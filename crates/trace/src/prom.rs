//! Prometheus text-format exposition of [`MetricsSnapshot`]s and live
//! [`TelemetrySnapshot`]s.
//!
//! Renders the deterministic metrics registry in the exposition format
//! scrapers expect (text format version 0.0.4): counters as single
//! samples, log₂ histograms as cumulative `_bucket{le="…"}` series with
//! `_sum`/`_count`. Metric names are sanitized to `[a-zA-Z0-9_:]`, label
//! values are escaped per the 0.0.4 rules (`\\`, `\"`, `\n`), and the
//! output is sorted by exposed name, so equal snapshots render to
//! byte-identical text — the registry's determinism contract carried
//! through to the wire format.
//!
//! All rendering funnels through [`PromWriter`], which tracks which metric
//! families have already had their `# HELP`/`# TYPE` headers emitted:
//! compose several snapshots into one exposition (registry + transport +
//! telemetry on a `/metrics` endpoint) and each family's headers still
//! appear exactly once, as the format requires.

use cosched_obs::metrics::{CounterSnapshot, HistogramSnapshot, MetricsSnapshot};
use cosched_obs::monitor::TelemetrySnapshot;
use cosched_obs::trace::GLOBAL;
use cosched_proto::TransportMetrics;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Sanitize a registry metric name into a legal Prometheus metric name.
///
/// Dots and dashes (the registry's namespace separators) become
/// underscores; a leading digit is prefixed. `cosched.holds` →
/// `cosched_holds`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if c.is_ascii_digit() {
            // A digit cannot lead; prefix and keep it.
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the 0.0.4 text format: backslash, double
/// quote, and line feed must be written `\\`, `\"`, and `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Incremental exposition builder that emits each metric family's
/// `# HELP`/`# TYPE` headers exactly once, however many snapshots are
/// rendered through it.
///
/// Reuse one writer across every piece of a `/metrics` response; a fresh
/// writer per render would duplicate family headers the moment two
/// snapshots share a family, which the text format forbids.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
    emitted: BTreeSet<String>,
}

impl PromWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit `# HELP`/`# TYPE` for `name` if this writer has not already,
    /// then return the sanitized family name. An empty `help` skips the
    /// HELP line (registry metrics carry no descriptions).
    fn family(&mut self, name: &str, kind: &str, help: &str) -> String {
        let name = sanitize_name(name);
        if self.emitted.insert(name.clone()) {
            if !help.is_empty() {
                let _ = writeln!(self.out, "# HELP {name} {help}");
            }
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
        name
    }

    /// Append one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let name = self.family(name, "counter", help);
        let labels = render_labels(labels);
        let _ = writeln!(self.out, "{name}{labels} {value}");
    }

    /// Append one gauge sample (floats render with the shortest exact
    /// representation `Display` gives).
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let name = self.family(name, "gauge", help);
        let labels = render_labels(labels);
        let _ = writeln!(self.out, "{name}{labels} {value}");
    }

    /// Append one histogram series (cumulative buckets + `_sum`/`_count`).
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        label: Option<(&str, &str)>,
        h: &HistogramSnapshot,
    ) {
        let name = self.family(name, "histogram", help);
        render_histogram_series(&mut self.out, &name, label, h);
    }

    /// The exposition text so far.
    pub fn finish(self) -> String {
        self.out
    }

    pub fn as_str(&self) -> &str {
        &self.out
    }
}

/// Render a `{k="v",…}` label block (empty string for no labels), escaping
/// values.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Render a whole snapshot to Prometheus text format.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut w = PromWriter::new();
    render_prometheus_into(&mut w, snapshot);
    w.finish()
}

/// Render a registry snapshot through a shared [`PromWriter`] (family
/// headers deduplicated across everything the writer has seen).
pub fn render_prometheus_into(w: &mut PromWriter, snapshot: &MetricsSnapshot) {
    // Sort by exposed (sanitized) name so sanitization collisions or
    // reorderings cannot make output order depend on registry internals.
    let mut counters: Vec<(String, &CounterSnapshot)> = snapshot
        .counters
        .iter()
        .map(|c| (sanitize_name(&c.name), c))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    let mut histograms: Vec<(String, &HistogramSnapshot)> = snapshot
        .histograms
        .iter()
        .map(|h| (sanitize_name(&h.name), h))
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));

    for (name, c) in counters {
        w.counter(&name, "", &[], c.value);
    }
    for (name, h) in histograms {
        w.histogram(&name, "", None, h);
    }
}

/// Append one histogram's cumulative bucket/sum/count series, optionally
/// labeled (the `# TYPE` header is the caller's responsibility so several
/// labeled series can share one family).
fn render_histogram_series(
    out: &mut String,
    name: &str,
    label: Option<(&str, &str)>,
    h: &HistogramSnapshot,
) {
    let prefix = match label {
        Some((k, v)) => format!("{k}=\"{}\",", escape_label_value(v)),
        None => String::new(),
    };
    let plain = match label {
        Some((k, v)) => format!("{{{k}=\"{}\"}}", escape_label_value(v)),
        None => String::new(),
    };
    let mut cumulative = 0u64;
    for b in &h.buckets {
        cumulative += b.count;
        let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"{}\"}} {cumulative}", b.le);
    }
    let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum{plain} {}", h.sum);
    let _ = writeln!(out, "{name}_count{plain} {}", h.count);
}

/// Render an instrumented transport's activity
/// ([`cosched_proto::TransportMetrics`]) to Prometheus text format:
/// aggregate request/failure counters, per-kind call and timeout counters
/// (as a `kind` label), and wall-clock latency histograms both aggregate
/// and per kind. Per-kind series are emitted in the snapshot's order
/// (fixed kind order), so equal snapshots render byte-identically.
pub fn render_transport_prometheus(metrics: &TransportMetrics) -> String {
    let mut w = PromWriter::new();
    render_transport_prometheus_into(&mut w, metrics);
    w.finish()
}

/// Transport exposition through a shared [`PromWriter`].
pub fn render_transport_prometheus_into(w: &mut PromWriter, metrics: &TransportMetrics) {
    w.counter("cosched_rpc_requests_total", "", &[], metrics.calls);
    w.counter("cosched_rpc_failures_total", "", &[], metrics.failures);
    for (kind, n) in &metrics.calls_by_kind {
        w.counter("cosched_rpc_calls_total", "", &[("kind", kind)], *n);
    }
    w.counter("cosched_rpc_timeouts_total", "", &[], metrics.timeouts);
    for (kind, n) in &metrics.timeouts_by_kind {
        w.counter("cosched_rpc_timeouts_total", "", &[("kind", kind)], *n);
    }
    w.histogram("cosched_rpc_latency_ns", "", None, &metrics.latency_ns);
    for (kind, h) in &metrics.latency_by_kind {
        w.histogram("cosched_rpc_latency_ns", "", Some(("kind", kind)), h);
    }
}

/// Render a live [`TelemetrySnapshot`] (the streaming monitor's view) to
/// Prometheus text format: run totals as counters, per-machine occupancy
/// as machine-labeled gauges alongside run-wide unlabeled values, the
/// rendezvous-latency histogram, and one `cosched_alert_active` sample per
/// firing alert (rule names pass through label escaping).
pub fn render_telemetry_prometheus(snap: &TelemetrySnapshot) -> String {
    let mut w = PromWriter::new();
    render_telemetry_prometheus_into(&mut w, snap);
    w.finish()
}

/// Telemetry exposition through a shared [`PromWriter`].
pub fn render_telemetry_prometheus_into(w: &mut PromWriter, snap: &TelemetrySnapshot) {
    w.gauge(
        "cosched_sim_time_seconds",
        "Simulation time of this snapshot",
        &[],
        snap.sim_time as f64,
    );
    w.counter(
        "cosched_trace_events_total",
        "Trace events consumed by the streaming monitor",
        &[],
        snap.events,
    );
    for (name, help, value) in [
        (
            "cosched_jobs_submitted_total",
            "Jobs submitted",
            snap.submitted,
        ),
        ("cosched_jobs_started_total", "Jobs started", snap.started),
        (
            "cosched_jobs_finished_total",
            "Jobs finished",
            snap.finished,
        ),
        (
            "cosched_rpc_observed_total",
            "RPC calls observed (incl. timeouts)",
            snap.rpc_calls,
        ),
        (
            "cosched_rpc_observed_timeouts_total",
            "RPC timeouts observed",
            snap.rpc_timeouts,
        ),
        (
            "cosched_deadlock_sweeps_total",
            "Deadlock-breaker release sweeps",
            snap.deadlock_sweeps,
        ),
        (
            "cosched_forced_releases_total",
            "Held jobs demoted by the deadlock breaker",
            snap.forced_releases,
        ),
        ("cosched_yields_total", "Coscheduling yields", snap.yields),
        (
            "cosched_holds_placed_total",
            "Coscheduling holds placed",
            snap.holds_placed,
        ),
        (
            "cosched_rendezvous_commits_total",
            "Pair rendezvous commits",
            snap.rendezvous_commits,
        ),
        (
            "cosched_alerts_raised_total",
            "Alert raise transitions",
            snap.alerts_raised_total,
        ),
        (
            "cosched_alerts_resolved_total",
            "Alert resolve transitions",
            snap.alerts_resolved_total,
        ),
    ] {
        w.counter(name, help, &[], value);
    }
    // Run-wide instantaneous gauges, then the same families with a
    // `machine` label per domain.
    w.gauge(
        "cosched_utilization",
        "Used-node proportion of capacity",
        &[],
        snap.utilization(),
    );
    w.gauge(
        "cosched_held_node_proportion",
        "Held-node proportion of capacity",
        &[],
        snap.held_node_proportion(),
    );
    w.gauge(
        "cosched_queue_age_seconds",
        "Age of the oldest queued job",
        &[],
        snap.queue_age_secs() as f64,
    );
    for m in &snap.machines {
        let index = m.index.to_string();
        let label = [("machine", index.as_str())];
        w.gauge("cosched_utilization", "", &label, m.utilization());
        w.gauge(
            "cosched_held_node_proportion",
            "",
            &label,
            m.held_node_proportion(),
        );
        w.gauge(
            "cosched_queue_age_seconds",
            "",
            &label,
            m.queue_age_secs as f64,
        );
        w.gauge(
            "cosched_jobs_running",
            "Running jobs",
            &label,
            m.running as f64,
        );
        w.gauge(
            "cosched_jobs_queued",
            "Queued jobs",
            &label,
            m.queued as f64,
        );
        w.gauge("cosched_jobs_held", "Held jobs", &label, m.held as f64);
        w.gauge(
            "cosched_nodes_used",
            "Nodes in use",
            &label,
            m.used_nodes as f64,
        );
        w.gauge(
            "cosched_nodes_held",
            "Nodes held",
            &label,
            m.held_nodes as f64,
        );
        w.gauge(
            "cosched_node_capacity",
            "Node capacity",
            &label,
            m.capacity as f64,
        );
        w.gauge(
            "cosched_queue_age_high_water_seconds",
            "Largest queue age observed",
            &label,
            m.queue_age_high_water as f64,
        );
        w.gauge(
            "cosched_used_node_seconds",
            "Integral of nodes in use over sim time",
            &label,
            m.used_node_seconds as f64,
        );
        w.gauge(
            "cosched_held_node_seconds",
            "Integral of nodes held over sim time",
            &label,
            m.held_node_seconds as f64,
        );
    }
    w.histogram(
        "cosched_rendezvous_latency_seconds",
        "Submit-to-synchronized-start latency (sim-seconds)",
        None,
        &snap.rendezvous_latency,
    );
    for alert in &snap.active_alerts {
        let machine = if alert.machine == GLOBAL {
            "global".to_string()
        } else {
            alert.machine.to_string()
        };
        w.gauge(
            "cosched_alert_active",
            "Currently firing alert rules",
            &[("rule", alert.rule.as_str()), ("machine", machine.as_str())],
            1.0,
        );
    }
    w.gauge(
        "cosched_run_done",
        "1 once the run has finished",
        &[],
        snap.done as u64 as f64,
    );
    w.gauge(
        "cosched_run_deadlocked",
        "1 if the run ended deadlocked",
        &[],
        snap.deadlocked as u64 as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_obs::MetricsRegistry;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("cosched.holds"), "cosched_holds");
        assert_eq!(sanitize_name("rpc-timeouts"), "rpc_timeouts");
        assert_eq!(sanitize_name("job.wait_secs"), "job_wait_secs");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok:name_1"), "ok:name_1");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(
            escape_label_value("\\\"\n"),
            "\\\\\\\"\\n",
            "all three escapes compose"
        );
    }

    #[test]
    fn writer_escapes_labels_in_samples() {
        let mut w = PromWriter::new();
        w.gauge("g", "", &[("rule", "x>\"0.4\"\nnext")], 1.0);
        let text = w.finish();
        assert!(
            text.contains("g{rule=\"x>\\\"0.4\\\"\\nnext\"} 1"),
            "{text}"
        );
        assert_eq!(text.lines().count(), 2, "one TYPE line + one sample");
    }

    #[test]
    fn family_headers_emitted_once_across_repeated_snapshots() {
        let mut reg = MetricsRegistry::new();
        reg.set("cosched.holds", 3);
        reg.observe("job.wait_secs", 5);
        let snap = reg.snapshot();
        let mut w = PromWriter::new();
        render_prometheus_into(&mut w, &snap);
        reg.set("cosched.holds", 4);
        render_prometheus_into(&mut w, &reg.snapshot());
        let text = w.finish();
        assert_eq!(
            text.matches("# TYPE cosched_holds counter").count(),
            1,
            "{text}"
        );
        assert_eq!(
            text.matches("# TYPE job_wait_secs histogram").count(),
            1,
            "{text}"
        );
        // Both samples are still present.
        assert!(text.contains("cosched_holds 3\n"), "{text}");
        assert!(text.contains("cosched_holds 4\n"), "{text}");
    }

    #[test]
    fn renders_counters_and_cumulative_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.set("cosched.holds", 3);
        reg.set("rpc.calls", 7);
        for v in [0u64, 1, 2, 1000] {
            reg.observe("job.wait_secs", v);
        }
        let text = render_prometheus(&reg.snapshot());
        assert!(
            text.contains("# TYPE cosched_holds counter\ncosched_holds 3\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE job_wait_secs histogram"), "{text}");
        // Buckets are cumulative: 0→1, 1→2, ≤3→3, ≤1023→4, +Inf→4.
        assert!(text.contains("job_wait_secs_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("job_wait_secs_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("job_wait_secs_bucket{le=\"3\"} 3"), "{text}");
        assert!(
            text.contains("job_wait_secs_bucket{le=\"1023\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("job_wait_secs_bucket{le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("job_wait_secs_sum 1003"), "{text}");
        assert!(text.contains("job_wait_secs_count 4"), "{text}");
    }

    #[test]
    fn renders_transport_metrics_with_kind_labels() {
        use cosched_proto::{InstrumentedTransport, Request, Response, Transport};
        let mut t =
            InstrumentedTransport::new(cosched_proto::transport::Loopback(|_req: Request| {
                Response::Pong
            }));
        t.call(&Request::Ping).unwrap();
        t.call(&Request::Ping).unwrap();
        t.call(&Request::GetMateJob {
            for_job: cosched_workload::JobId(3),
        })
        .unwrap();
        let text = render_transport_prometheus(&t.metrics());
        assert!(text.contains("cosched_rpc_requests_total 3"), "{text}");
        assert!(
            text.contains("cosched_rpc_calls_total{kind=\"ping\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("cosched_rpc_calls_total{kind=\"get_mate_job\"} 1"),
            "{text}"
        );
        assert!(text.contains("cosched_rpc_timeouts_total 0"), "{text}");
        assert!(
            text.contains("cosched_rpc_latency_ns_bucket{kind=\"ping\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("cosched_rpc_latency_ns_count 3"), "{text}");
        assert!(
            text.contains("cosched_rpc_latency_ns_count{kind=\"get_mate_job\"} 1"),
            "{text}"
        );
        // One family header despite aggregate + per-kind series.
        assert_eq!(
            text.matches("# TYPE cosched_rpc_latency_ns histogram")
                .count(),
            1,
            "{text}"
        );
        assert_eq!(
            text.matches("# TYPE cosched_rpc_timeouts_total counter")
                .count(),
            1,
            "{text}"
        );
    }

    #[test]
    fn renders_telemetry_snapshot() {
        use cosched_obs::trace::{SpanKind, TraceEvent, GLOBAL};
        use cosched_obs::{AlertRule, Observer, StreamingMonitor};
        let rule = AlertRule::parse("pressure: held_node_proportion > 0.4").unwrap();
        let mut m = StreamingMonitor::with_rules(vec![rule])
            .with_capacities(&[100, 100])
            .with_tick_secs(60);
        m.record(
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 1,
                size: 90,
                paired: true,
            },
        );
        m.record(10, 0, TraceEvent::CoschedHoldPlaced { job: 1, nodes: 90 });
        m.record(
            0,
            GLOBAL,
            TraceEvent::SpanOpen {
                span: 1,
                parent: 0,
                kind: SpanKind::PairRendezvous,
                job: 1,
                mate: 2,
            },
        );
        m.record(500, GLOBAL, TraceEvent::SpanClose { span: 1 });
        let text = render_telemetry_prometheus(&m.snapshot());
        assert!(text.contains("# TYPE cosched_utilization gauge"), "{text}");
        assert!(text.contains("cosched_held_node_proportion 0.45"), "{text}");
        assert!(
            text.contains("cosched_held_node_proportion{machine=\"0\"} 0.9"),
            "{text}"
        );
        assert!(
            text.contains("cosched_nodes_held{machine=\"0\"} 90"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE cosched_rendezvous_latency_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("cosched_rendezvous_latency_seconds_count 1"),
            "{text}"
        );
        assert!(
            text.contains("cosched_alert_active{rule=\"pressure\",machine=\"global\"} 1"),
            "{text}"
        );
        // Per-machine gauges share one family header.
        assert_eq!(
            text.matches("# TYPE cosched_jobs_queued gauge").count(),
            1,
            "{text}"
        );
        assert!(text.contains("cosched_run_done 0"), "{text}");
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let build = |order: &[&'static str]| {
            let mut reg = MetricsRegistry::new();
            for &n in order {
                reg.inc(n);
            }
            render_prometheus(&reg.snapshot())
        };
        let t1 = build(&["z.last", "a.first", "m.mid"]);
        let t2 = build(&["m.mid", "z.last", "a.first"]);
        assert_eq!(t1, t2);
        let a = t1.find("a_first").unwrap();
        let m = t1.find("m_mid").unwrap();
        let z = t1.find("z_last").unwrap();
        assert!(a < m && m < z, "{t1}");
    }
}
