//! ASCII timeline rendering: utilization strips and per-job Gantt rows.
//!
//! Everything is a pure function of the reconstructed lifecycles, so two
//! same-seed traces render byte-identically — the renderer is usable in
//! golden tests, not just for eyeballing. Time is bucketed into a fixed
//! number of columns; a bucket takes the "strongest" state that touches it
//! (running > held > queued).

use crate::lifecycle::{JobLifecycle, LifecycleSet};
use std::fmt::Write as _;

/// Density ramp for the utilization strip, lowest to highest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Clamp rendering width to something readable.
fn clamp_width(width: usize) -> usize {
    width.clamp(10, 400)
}

/// Overlap in seconds between `[a0, a1)` and `[b0, b1)`.
fn overlap(a0: u64, a1: u64, b0: u64, b1: u64) -> u64 {
    a1.min(b1).saturating_sub(a0.max(b0))
}

/// Render one job's row over `width` buckets spanning `[0, horizon]`.
fn job_row(lc: &JobLifecycle, horizon: u64, width: usize) -> String {
    let mut row = String::with_capacity(width);
    let span = horizon.max(1);
    for col in 0..width {
        let t0 = span * col as u64 / width as u64;
        let t1 = (span * (col as u64 + 1) / width as u64).max(t0 + 1);
        let run = match (lc.start, lc.end) {
            (Some(s), Some(e)) => overlap(t0, t1, s, e) > 0,
            (Some(s), None) => t1 > s,
            _ => false,
        };
        let held = lc.holds.iter().any(|&(a, b)| overlap(t0, t1, a, b) > 0)
            || lc.open_hold.is_some_and(|a| t1 > a);
        let queued = t1 > lc.submit && lc.start.is_none_or(|s| t0 < s);
        row.push(if run {
            '#'
        } else if held {
            'h'
        } else if queued {
            '.'
        } else {
            ' '
        });
    }
    row
}

/// Per-job Gantt chart: one row per job (submit order), `.` queued,
/// `h` holding, `#` running; paired jobs are starred. At most `max_rows`
/// rows per machine are shown.
pub fn render_gantt(set: &LifecycleSet, width: usize, max_rows: usize) -> String {
    let width = clamp_width(width);
    let mut out = String::new();
    if set.jobs.is_empty() {
        return "gantt: trace contains no job lifecycle events\n".to_string();
    }
    for machine in set.machines() {
        let mut jobs: Vec<&JobLifecycle> = set.machine_jobs(machine).collect();
        jobs.sort_by_key(|lc| (lc.submit, lc.job));
        let shown = jobs.len().min(max_rows.max(1));
        let _ = writeln!(
            out,
            "machine {machine} — {} jobs over {}s{}",
            jobs.len(),
            set.horizon,
            if shown < jobs.len() {
                format!(" (first {shown} by submit time)")
            } else {
                String::new()
            }
        );
        for lc in &jobs[..shown] {
            let _ = writeln!(
                out,
                "  {:>8}{} |{}|",
                lc.job,
                if lc.paired { '*' } else { ' ' },
                job_row(lc, set.horizon, width)
            );
        }
    }
    let _ = writeln!(
        out,
        "  {:>9} |{:<w$}|  (. queued  h holding  # running  * paired)",
        "t=0",
        format!("→ {}s", set.horizon),
        w = width
    );
    out
}

/// Utilization strip per machine: each column's density is delivered
/// node-time over `capacity × bucket`, drawn on a 10-level ramp. With no
/// explicit capacity the machine's peak concurrent allocation is used.
pub fn render_utilization(set: &LifecycleSet, width: usize, capacity: Option<u64>) -> String {
    let width = clamp_width(width);
    let mut out = String::new();
    if set.jobs.is_empty() || set.horizon == 0 {
        return "utilization: trace contains no job lifecycle events\n".to_string();
    }
    let span = set.horizon;
    for machine in set.machines() {
        let cap = capacity
            .unwrap_or_else(|| set.peak_running_nodes(machine))
            .max(1);
        let mut busy = vec![0u64; width];
        let mut held = vec![0u64; width];
        for lc in set.machine_jobs(machine) {
            let run_iv = match (lc.start, lc.end) {
                (Some(s), Some(e)) => Some((s, e)),
                (Some(s), None) => Some((s, span)),
                _ => None,
            };
            for col in 0..width {
                let t0 = span * col as u64 / width as u64;
                let t1 = (span * (col as u64 + 1) / width as u64).max(t0 + 1);
                if let Some((s, e)) = run_iv {
                    busy[col] += lc.size * overlap(t0, t1, s, e);
                }
                for &(a, b) in &lc.holds {
                    held[col] += lc.size * overlap(t0, t1, a, b);
                }
                if let Some(a) = lc.open_hold {
                    held[col] += lc.size * overlap(t0, t1, a, span);
                }
            }
        }
        let strip = |series: &[u64]| -> String {
            (0..width)
                .map(|col| {
                    let t0 = span * col as u64 / width as u64;
                    let t1 = (span * (col as u64 + 1) / width as u64).max(t0 + 1);
                    let denom = (cap * (t1 - t0)) as f64;
                    let density = (series[col] as f64 / denom).clamp(0.0, 1.0);
                    let idx = (density * (RAMP.len() - 1) as f64).round() as usize;
                    RAMP[idx.min(RAMP.len() - 1)] as char
                })
                .collect()
        };
        let total_busy: u64 = busy.iter().sum();
        let mean_util = total_busy as f64 / (cap * span) as f64;
        let _ = writeln!(
            out,
            "machine {machine} (cap {cap} nodes, mean util {:.1}%)",
            mean_util * 100.0
        );
        let _ = writeln!(out, "  run  |{}|", strip(&busy));
        if held.iter().any(|&h| h > 0) {
            let _ = writeln!(out, "  held |{}|", strip(&held));
        }
    }
    let _ = writeln!(out, "  time |0s{:>w$}|", format!("{span}s"), w = width - 2);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_obs::trace::{TraceEvent, TraceRecord};

    fn rec(time: u64, machine: usize, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time,
            machine,
            event,
        }
    }

    fn demo_set() -> LifecycleSet {
        let records = vec![
            rec(
                0,
                0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    size: 10,
                    paired: true,
                },
            ),
            rec(
                0,
                0,
                TraceEvent::JobSubmitted {
                    job: 2,
                    size: 5,
                    paired: false,
                },
            ),
            rec(10, 0, TraceEvent::CoschedHoldPlaced { job: 1, nodes: 10 }),
            rec(
                50,
                0,
                TraceEvent::CoschedStart {
                    job: 1,
                    with_mate: true,
                },
            ),
            rec(
                60,
                0,
                TraceEvent::CoschedStart {
                    job: 2,
                    with_mate: false,
                },
            ),
            rec(90, 0, TraceEvent::JobEnded { job: 1 }),
            rec(100, 0, TraceEvent::JobEnded { job: 2 }),
        ];
        LifecycleSet::from_records(&records).unwrap()
    }

    #[test]
    fn gantt_shows_states_in_order() {
        let text = render_gantt(&demo_set(), 50, 100);
        assert!(text.contains("machine 0 — 2 jobs"), "{text}");
        assert!(text.contains("1* |"), "paired job starred: {text}");
        // The paired row passes through queued, held, running.
        let row = text.lines().find(|l| l.contains("1* |")).unwrap();
        let cells: &str = row.split('|').nth(1).unwrap();
        assert!(cells.contains('.'), "{row}");
        assert!(cells.contains('h'), "{row}");
        assert!(cells.contains('#'), "{row}");
        // States appear in lifecycle order.
        let (q, h, r) = (
            cells.find('.').unwrap(),
            cells.find('h').unwrap(),
            cells.find('#').unwrap(),
        );
        assert!(q < h && h < r, "{row}");
    }

    #[test]
    fn gantt_caps_rows() {
        let text = render_gantt(&demo_set(), 40, 1);
        assert!(text.contains("(first 1 by submit time)"), "{text}");
    }

    #[test]
    fn utilization_strip_has_density_and_held_rows() {
        let text = render_utilization(&demo_set(), 50, None);
        assert!(text.contains("machine 0 (cap 15 nodes"), "{text}");
        assert!(text.contains("run  |"), "{text}");
        assert!(text.contains("held |"), "{text}");
        assert!(text.contains("mean util"), "{text}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_gantt(&demo_set(), 60, 10) + &render_utilization(&demo_set(), 60, Some(20));
        let b = render_gantt(&demo_set(), 60, 10) + &render_utilization(&demo_set(), 60, Some(20));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_renders_a_note() {
        let set = LifecycleSet::default();
        assert!(render_gantt(&set, 40, 5).contains("no job lifecycle"));
        assert!(render_utilization(&set, 40, None).contains("no job lifecycle"));
    }
}
