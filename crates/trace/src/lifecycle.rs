//! Job-lifecycle reconstruction: fold a [`TraceRecord`] stream into per-job
//! timelines.
//!
//! The driver's trace is an interleaved event log; answering the paper's §V
//! questions ("how long did mated jobs hold resources?", "where did the
//! wait come from?") needs the per-job view back. Reconstruction is a
//! strict state machine — submit → queued ⇄ held → running → finished —
//! and any event that contradicts it (a start before a submission, a hold
//! on a running job, time running backwards) is a [`LifecycleError`]
//! pinpointing the offending record, so schema or emission bugs surface at
//! analysis time instead of silently skewing aggregates.

use cosched_obs::trace::{TraceEvent, TraceRecord};
use std::collections::BTreeMap;

/// Where a job is in its life, as far as the trace has shown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Queued,
    Held,
    Running,
    Finished,
}

/// How a pair committed its simultaneous start (from the
/// `cosched-rendezvous-commit` event on the triggering side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rendezvous {
    /// The mate's job id (on the other machine).
    pub mate: u64,
    /// True when the mate was holding and got started in place.
    pub anchored: bool,
}

/// One reconstructed per-job timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobLifecycle {
    /// Machine index the job ran on.
    pub machine: usize,
    /// Job id (unique per machine).
    pub job: u64,
    /// Requested nodes.
    pub size: u64,
    /// Whether the job has a mate on the other machine.
    pub paired: bool,
    /// Submission instant (sim seconds).
    pub submit: u64,
    /// Start instant; `None` when the trace ended with the job waiting
    /// (deadlock or truncated run).
    pub start: Option<u64>,
    /// Completion instant; `None` while running at end of trace.
    pub end: Option<u64>,
    /// True when the start committed together with the mate (either side
    /// of a rendezvous).
    pub started_with_mate: bool,
    /// Closed hold episodes `[from, to)` — resources reserved, job idle.
    pub holds: Vec<(u64, u64)>,
    /// A hold still open when the trace ended (deadlocked run).
    pub open_hold: Option<u64>,
    /// Instants of yield give-backs (job skipped its turn for its mate).
    pub yields: Vec<u64>,
    /// Holds force-released by the §IV-E1 deadlock breaker.
    pub forced_releases: u32,
    /// Hold→yield degradations (held-capacity cap, §IV-E2).
    pub degradations: u32,
    /// Yield→hold escalations (yield cap, §IV-E2).
    pub escalations: u32,
    /// Rendezvous commit observed on this job's side, if any.
    pub rendezvous: Option<Rendezvous>,
}

impl JobLifecycle {
    /// Queue wait: submission to start.
    pub fn wait_secs(&self) -> Option<u64> {
        self.start.map(|s| s - self.submit)
    }

    /// First instant the job was ready to run but deferred to coscheduling
    /// (first hold or yield); equals `start` when it never deferred.
    pub fn first_ready(&self) -> Option<u64> {
        let first_hold = self.holds.first().map(|&(t, _)| t);
        let open = self.open_hold;
        let first_yield = self.yields.first().copied();
        [first_hold, open, first_yield, self.start]
            .into_iter()
            .flatten()
            .min()
    }

    /// Total time spent holding resources while idle, clipped to `horizon`
    /// for a hold still open at end of trace.
    pub fn hold_secs(&self, horizon: u64) -> u64 {
        let closed: u64 = self.holds.iter().map(|&(a, b)| b - a).sum();
        closed + self.open_hold.map_or(0, |t| horizon.saturating_sub(t))
    }

    /// Runtime, when the job both started and finished.
    pub fn run_secs(&self) -> Option<u64> {
        match (self.start, self.end) {
            (Some(s), Some(e)) => Some(e - s),
            _ => None,
        }
    }
}

/// A reconstruction failure: the record index (0-based position in the
/// stream) plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifecycleError {
    /// Index of the offending record in the input slice.
    pub record: usize,
    /// Sim time of the offending record.
    pub time: u64,
    pub message: String,
}

impl std::fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "record {} (t={}): {}",
            self.record, self.time, self.message
        )
    }
}

impl std::error::Error for LifecycleError {}

/// All reconstructed lifecycles of one trace, keyed `(machine, job id)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LifecycleSet {
    /// Per-job timelines in deterministic `(machine, job)` order.
    pub jobs: BTreeMap<(usize, u64), JobLifecycle>,
    /// Largest sim time seen in the trace.
    pub horizon: u64,
    /// Total records consumed (including non-lifecycle events).
    pub records: usize,
}

impl LifecycleSet {
    /// Fold an event stream into per-job timelines, validating ordering.
    ///
    /// Non-lifecycle events (`Sched*`, `Rpc*`, `Engine*`, `Frame*`) only
    /// advance the horizon; lifecycle events must respect the job state
    /// machine or reconstruction fails with the offending record's index.
    pub fn from_records(records: &[TraceRecord]) -> Result<Self, LifecycleError> {
        let mut set = LifecycleSet {
            records: records.len(),
            ..Default::default()
        };
        let mut states: BTreeMap<(usize, u64), State> = BTreeMap::new();
        let mut last_time = 0u64;
        for (i, r) in records.iter().enumerate() {
            let fail = |message: String| LifecycleError {
                record: i,
                time: r.time,
                message,
            };
            if r.time < last_time {
                return Err(fail(format!(
                    "time went backwards ({} after {last_time})",
                    r.time
                )));
            }
            last_time = r.time;
            set.horizon = set.horizon.max(r.time);
            let key = |job: u64| (r.machine, job);
            match r.event {
                TraceEvent::JobSubmitted { job, size, paired } => {
                    let prev = set.jobs.insert(
                        key(job),
                        JobLifecycle {
                            machine: r.machine,
                            job,
                            size,
                            paired,
                            submit: r.time,
                            start: None,
                            end: None,
                            started_with_mate: false,
                            holds: Vec::new(),
                            open_hold: None,
                            yields: Vec::new(),
                            forced_releases: 0,
                            degradations: 0,
                            escalations: 0,
                            rendezvous: None,
                        },
                    );
                    if prev.is_some() {
                        return Err(fail(format!(
                            "job {job} submitted twice on machine {}",
                            r.machine
                        )));
                    }
                    states.insert(key(job), State::Queued);
                }
                TraceEvent::CoschedHoldPlaced { job, .. } => {
                    let lc = lookup(&mut set, &mut states, key(job), i, r, "hold")?;
                    let (lc, state) = lc;
                    if *state != State::Queued {
                        return Err(fail(format!("hold placed on {state:?} job {job}")));
                    }
                    *state = State::Held;
                    lc.open_hold = Some(r.time);
                }
                TraceEvent::CoschedDeadlockDemotion { job } => {
                    let (lc, state) = lookup(&mut set, &mut states, key(job), i, r, "demotion")?;
                    if *state != State::Held {
                        return Err(fail(format!("demotion of {state:?} job {job}")));
                    }
                    let from = lc.open_hold.take().expect("held implies open hold");
                    lc.holds.push((from, r.time));
                    lc.forced_releases += 1;
                    *state = State::Queued;
                }
                TraceEvent::CoschedYield { job, .. } => {
                    let (lc, state) = lookup(&mut set, &mut states, key(job), i, r, "yield")?;
                    if *state != State::Queued {
                        return Err(fail(format!("yield by {state:?} job {job}")));
                    }
                    lc.yields.push(r.time);
                }
                TraceEvent::CoschedHeldCapDegradation { job, .. } => {
                    let (lc, _) = lookup(&mut set, &mut states, key(job), i, r, "degradation")?;
                    lc.degradations += 1;
                }
                TraceEvent::CoschedYieldCapEscalation { job, .. } => {
                    let (lc, _) = lookup(&mut set, &mut states, key(job), i, r, "escalation")?;
                    lc.escalations += 1;
                }
                TraceEvent::CoschedRendezvousCommit {
                    job,
                    mate,
                    anchored,
                } => {
                    let (lc, _) = lookup(&mut set, &mut states, key(job), i, r, "rendezvous")?;
                    lc.rendezvous = Some(Rendezvous { mate, anchored });
                    lc.started_with_mate = true;
                }
                TraceEvent::CoschedStart { job, with_mate } => {
                    let (lc, state) = lookup(&mut set, &mut states, key(job), i, r, "start")?;
                    match *state {
                        State::Queued | State::Held => {}
                        other => return Err(fail(format!("start of {other:?} job {job}"))),
                    }
                    if let Some(from) = lc.open_hold.take() {
                        lc.holds.push((from, r.time));
                    }
                    lc.start = Some(r.time);
                    lc.started_with_mate |= with_mate;
                    *state = State::Running;
                }
                TraceEvent::JobEnded { job } => {
                    let (lc, state) = lookup(&mut set, &mut states, key(job), i, r, "end")?;
                    if *state != State::Running {
                        return Err(fail(format!("end of {state:?} job {job}")));
                    }
                    lc.end = Some(r.time);
                    *state = State::Finished;
                }
                // Non-lifecycle events only move the horizon.
                _ => {}
            }
        }
        Ok(set)
    }

    /// Machine indices present, in order.
    pub fn machines(&self) -> Vec<usize> {
        let mut ms: Vec<usize> = self.jobs.keys().map(|&(m, _)| m).collect();
        ms.dedup();
        ms
    }

    /// Jobs of one machine, in id order.
    pub fn machine_jobs(&self, machine: usize) -> impl Iterator<Item = &JobLifecycle> {
        self.jobs
            .range((machine, 0)..=(machine, u64::MAX))
            .map(|(_, lc)| lc)
    }

    /// Peak concurrent running nodes on a machine — the effective capacity
    /// floor used when the true capacity is not known to the analyzer.
    pub fn peak_running_nodes(&self, machine: usize) -> u64 {
        // Sweep start/end edges in time order.
        let mut edges: Vec<(u64, i64)> = Vec::new();
        for lc in self.machine_jobs(machine) {
            if let Some(s) = lc.start {
                edges.push((s, lc.size as i64));
                edges.push((lc.end.unwrap_or(self.horizon), -(lc.size as i64)));
            }
        }
        edges.sort_unstable_by_key(|&(t, delta)| (t, delta));
        let (mut level, mut peak) = (0i64, 0i64);
        for (_, delta) in edges {
            level += delta;
            peak = peak.max(level);
        }
        peak.max(0) as u64
    }
}

/// Fetch the lifecycle + state for `key`, failing with a clear message when
/// the event references a job the trace never submitted.
fn lookup<'a>(
    set: &'a mut LifecycleSet,
    states: &'a mut BTreeMap<(usize, u64), State>,
    key: (usize, u64),
    record: usize,
    r: &TraceRecord,
    what: &str,
) -> Result<(&'a mut JobLifecycle, &'a mut State), LifecycleError> {
    match (set.jobs.get_mut(&key), states.get_mut(&key)) {
        (Some(lc), Some(state)) => Ok((lc, state)),
        _ => Err(LifecycleError {
            record,
            time: r.time,
            message: format!(
                "{what} event for job {} on machine {} before its submission",
                key.1, key.0
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(time: u64, machine: usize, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time,
            machine,
            event,
        }
    }

    fn submit(time: u64, machine: usize, job: u64, paired: bool) -> TraceRecord {
        rec(
            time,
            machine,
            TraceEvent::JobSubmitted {
                job,
                size: 10,
                paired,
            },
        )
    }

    #[test]
    fn reconstructs_hold_then_rendezvous() {
        let records = vec![
            submit(0, 0, 1, true),
            rec(5, 0, TraceEvent::CoschedHoldPlaced { job: 1, nodes: 10 }),
            rec(
                60,
                0,
                TraceEvent::CoschedStart {
                    job: 1,
                    with_mate: true,
                },
            ),
            rec(100, 0, TraceEvent::JobEnded { job: 1 }),
        ];
        let set = LifecycleSet::from_records(&records).unwrap();
        let lc = &set.jobs[&(0, 1)];
        assert_eq!(lc.submit, 0);
        assert_eq!(lc.start, Some(60));
        assert_eq!(lc.end, Some(100));
        assert_eq!(lc.holds, vec![(5, 60)]);
        assert_eq!(lc.hold_secs(set.horizon), 55);
        assert_eq!(lc.wait_secs(), Some(60));
        assert_eq!(lc.first_ready(), Some(5));
        assert_eq!(lc.run_secs(), Some(40));
        assert!(lc.started_with_mate);
        assert_eq!(set.horizon, 100);
    }

    #[test]
    fn demotion_closes_and_reopens_holds() {
        let records = vec![
            submit(0, 1, 7, true),
            rec(10, 1, TraceEvent::CoschedHoldPlaced { job: 7, nodes: 10 }),
            rec(30, 1, TraceEvent::CoschedDeadlockDemotion { job: 7 }),
            rec(40, 1, TraceEvent::CoschedHoldPlaced { job: 7, nodes: 10 }),
            rec(
                90,
                1,
                TraceEvent::CoschedStart {
                    job: 7,
                    with_mate: false,
                },
            ),
        ];
        let set = LifecycleSet::from_records(&records).unwrap();
        let lc = &set.jobs[&(1, 7)];
        assert_eq!(lc.holds, vec![(10, 30), (40, 90)]);
        assert_eq!(lc.forced_releases, 1);
        assert_eq!(lc.hold_secs(set.horizon), 70);
        assert_eq!(lc.end, None, "still running at end of trace");
    }

    #[test]
    fn open_hold_clips_to_horizon() {
        let records = vec![
            submit(0, 0, 2, true),
            rec(10, 0, TraceEvent::CoschedHoldPlaced { job: 2, nodes: 10 }),
            rec(50, 0, TraceEvent::EngineDispatch { seq: 9 }),
        ];
        let set = LifecycleSet::from_records(&records).unwrap();
        let lc = &set.jobs[&(0, 2)];
        assert_eq!(lc.start, None);
        assert_eq!(lc.open_hold, Some(10));
        assert_eq!(lc.hold_secs(set.horizon), 40);
    }

    #[test]
    fn yields_accumulate_while_queued() {
        let records = vec![
            submit(0, 0, 3, true),
            rec(
                5,
                0,
                TraceEvent::CoschedYield {
                    job: 3,
                    yields_so_far: 1,
                },
            ),
            rec(
                9,
                0,
                TraceEvent::CoschedYield {
                    job: 3,
                    yields_so_far: 2,
                },
            ),
            rec(
                20,
                0,
                TraceEvent::CoschedStart {
                    job: 3,
                    with_mate: true,
                },
            ),
        ];
        let set = LifecycleSet::from_records(&records).unwrap();
        let lc = &set.jobs[&(0, 3)];
        assert_eq!(lc.yields, vec![5, 9]);
        assert_eq!(lc.first_ready(), Some(5));
        assert_eq!(lc.hold_secs(set.horizon), 0);
    }

    #[test]
    fn rejects_start_before_submission() {
        let records = vec![rec(
            5,
            0,
            TraceEvent::CoschedStart {
                job: 1,
                with_mate: false,
            },
        )];
        let err = LifecycleSet::from_records(&records).unwrap_err();
        assert_eq!(err.record, 0);
        assert!(err.message.contains("before its submission"), "{err}");
    }

    #[test]
    fn rejects_end_without_start() {
        let records = vec![
            submit(0, 0, 1, false),
            rec(9, 0, TraceEvent::JobEnded { job: 1 }),
        ];
        let err = LifecycleSet::from_records(&records).unwrap_err();
        assert_eq!(err.record, 1);
        assert!(err.message.contains("end of Queued"), "{err}");
    }

    #[test]
    fn rejects_duplicate_submission_and_backwards_time() {
        let records = vec![submit(10, 0, 1, false), submit(10, 0, 1, false)];
        let err = LifecycleSet::from_records(&records).unwrap_err();
        assert!(err.message.contains("submitted twice"), "{err}");

        let records = vec![submit(10, 0, 1, false), submit(5, 0, 2, false)];
        let err = LifecycleSet::from_records(&records).unwrap_err();
        assert!(err.message.contains("time went backwards"), "{err}");
    }

    #[test]
    fn rejects_hold_on_running_job() {
        let records = vec![
            submit(0, 0, 1, true),
            rec(
                5,
                0,
                TraceEvent::CoschedStart {
                    job: 1,
                    with_mate: false,
                },
            ),
            rec(6, 0, TraceEvent::CoschedHoldPlaced { job: 1, nodes: 10 }),
        ];
        let err = LifecycleSet::from_records(&records).unwrap_err();
        assert_eq!(err.record, 2);
        assert!(err.message.contains("hold placed on Running"), "{err}");
    }

    #[test]
    fn same_machine_job_ids_do_not_collide_across_machines() {
        let records = vec![
            submit(0, 0, 1, false),
            submit(0, 1, 1, false),
            rec(
                4,
                1,
                TraceEvent::CoschedStart {
                    job: 1,
                    with_mate: false,
                },
            ),
        ];
        let set = LifecycleSet::from_records(&records).unwrap();
        assert_eq!(set.jobs.len(), 2);
        assert_eq!(set.jobs[&(0, 1)].start, None);
        assert_eq!(set.jobs[&(1, 1)].start, Some(4));
        assert_eq!(set.machines(), vec![0, 1]);
    }

    #[test]
    fn peak_running_nodes_sweeps_overlaps() {
        let records = vec![
            submit(0, 0, 1, false),
            submit(0, 0, 2, false),
            rec(
                0,
                0,
                TraceEvent::CoschedStart {
                    job: 1,
                    with_mate: false,
                },
            ),
            rec(
                5,
                0,
                TraceEvent::CoschedStart {
                    job: 2,
                    with_mate: false,
                },
            ),
            rec(8, 0, TraceEvent::JobEnded { job: 1 }),
            rec(20, 0, TraceEvent::JobEnded { job: 2 }),
        ];
        let set = LifecycleSet::from_records(&records).unwrap();
        // Both 10-node jobs overlap in [5, 8).
        assert_eq!(set.peak_running_nodes(0), 20);
    }
}
