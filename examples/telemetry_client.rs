//! Telemetry smoke client: poll a running `--telemetry` endpoint and
//! verify all three routes answer sensibly. CI launches a simulation with
//! `--telemetry 127.0.0.1:<port> --telemetry-linger-secs N` in the
//! background and then runs:
//!
//! ```text
//! cargo run --release --example telemetry_client -- 127.0.0.1:<port>
//! ```
//!
//! Exits nonzero (with a message on stderr) if any endpoint is
//! unreachable, malformed, or missing the families the paper's metrics
//! contract promises. Retries the first connect for a few seconds so the
//! race with the server starting up is harmless.

use coupled_cosched::prelude::TelemetrySnapshot;
use coupled_cosched::telemetry::http_get;
use std::time::Duration;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:9184".to_string());
    if let Err(message) = run(&addr) {
        eprintln!("telemetry_client: {message}");
        std::process::exit(1);
    }
}

fn run(addr: &str) -> Result<(), String> {
    let timeout = Duration::from_secs(5);

    // The server may still be binding; retry the first fetch briefly.
    let mut metrics = Err("never attempted".to_string());
    for attempt in 0..20 {
        metrics = http_get(addr, "/metrics", timeout);
        if metrics.is_ok() {
            break;
        }
        if attempt == 0 {
            eprintln!("telemetry_client: waiting for {addr} …");
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    let (code, body) = metrics?;
    if code != 200 {
        return Err(format!("/metrics answered HTTP {code}"));
    }
    for family in [
        "# TYPE cosched_utilization gauge",
        "# TYPE cosched_held_node_proportion gauge",
        "# TYPE cosched_rendezvous_latency_seconds histogram",
        "cosched_rendezvous_latency_seconds_bucket{le=\"+Inf\"}",
    ] {
        if !body.contains(family) {
            return Err(format!("/metrics is missing {family:?}"));
        }
    }
    println!("/metrics ok: {} bytes of Prometheus text", body.len());

    let (code, body) = http_get(addr, "/healthz", timeout)?;
    if code != 200 && code != 503 {
        return Err(format!("/healthz answered HTTP {code}"));
    }
    if !body.contains("\"status\":") {
        return Err(format!("/healthz body has no status: {body}"));
    }
    println!("/healthz ok ({code}): {body}");

    let (code, body) = http_get(addr, "/state", timeout)?;
    if code != 200 {
        return Err(format!("/state answered HTTP {code}"));
    }
    let snap: TelemetrySnapshot =
        serde_json::from_str(&body).map_err(|e| format!("/state is not a snapshot: {e}"))?;
    println!(
        "/state ok: sim {}s, {} submitted / {} finished, {} alerts active",
        snap.sim_time,
        snap.submitted,
        snap.finished,
        snap.active_alerts.len()
    );
    Ok(())
}
