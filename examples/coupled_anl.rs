//! The paper's headline scenario: Intrepid (40,960-node Blue Gene/P)
//! coupled with Eureka (100-node analysis cluster), month-like workloads,
//! jobs associated by the 2-minute submission-window rule, evaluated under
//! the baseline and all four scheme combinations.
//!
//! ```text
//! cargo run --release --example coupled_anl [days] [eureka_util]
//! ```

use coupled_cosched::cosched::{CoupledConfig, CoupledSimulation, SchemeCombo};
use coupled_cosched::metrics::table::{num, pct, Table};
use coupled_cosched::sim::{SimDuration, SimRng};
use coupled_cosched::workload::{pairing, MachineId, MachineModel, Trace, TraceGenerator};

fn build_traces(seed: u64, days: u64, eureka_util: f64) -> [Trace; 2] {
    let rng = SimRng::seed_from_u64(seed);
    let mut intrepid = TraceGenerator::new(MachineModel::intrepid(), MachineId(0))
        .span(SimDuration::from_days(days))
        .target_utilization(0.55)
        .generate(&mut rng.fork(0));
    let mut eureka = TraceGenerator::new(MachineModel::eureka(), MachineId(1))
        .span(SimDuration::from_days(days))
        .target_utilization(eureka_util)
        .generate(&mut rng.fork(1));
    // §V-D: associate jobs submitted within two minutes of each other,
    // thinned to the paper's observed 5–10 % share.
    pairing::pair_by_window(&mut intrepid, &mut eureka, SimDuration::from_mins(2));
    pairing::thin_pairs_to_share(&mut intrepid, &mut eureka, 0.075, &mut rng.fork(2));
    [intrepid, eureka]
}

fn main() {
    let mut args = std::env::args().skip(1);
    let days: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let util: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.5);

    let probe = build_traces(1, days, util);
    println!(
        "workload: Intrepid {} jobs, Eureka {} jobs, {} pairs, Eureka offered util {:.2}",
        probe[0].len(),
        probe[1].len(),
        probe[0].paired_count(),
        probe[1].offered_utilization(100),
    );

    let mut table = Table::new(
        format!("ANL coupled system, {days} days, Eureka util {util}"),
        &[
            "config",
            "I wait (min)",
            "I slowdown",
            "E wait (min)",
            "E slowdown",
            "sync I (min)",
            "sync E (min)",
            "I loss",
            "E loss",
            "pairs sync'd",
        ],
    );

    for combo in [
        None,
        Some(SchemeCombo::HH),
        Some(SchemeCombo::HY),
        Some(SchemeCombo::YH),
        Some(SchemeCombo::YY),
    ] {
        let config = match combo {
            Some(c) => CoupledConfig::anl(c),
            None => CoupledConfig::anl_baseline(),
        };
        let report = CoupledSimulation::new(config, build_traces(1, days, util)).run();
        let [i, e] = &report.summaries;
        table.row(&[
            combo.map_or("baseline".into(), |c| c.label()),
            num(i.avg_wait_mins, 1),
            num(i.avg_slowdown, 2),
            num(e.avg_wait_mins, 1),
            num(e.avg_slowdown, 2),
            num(i.avg_sync_mins, 1),
            num(e.avg_sync_mins, 1),
            pct(i.lost_util_rate),
            pct(e.lost_util_rate),
            if combo.is_none() {
                "n/a".into()
            } else {
                report.all_pairs_synchronized().to_string()
            },
        ]);
        assert!(
            !report.deadlocked,
            "no configuration may deadlock with the breaker on"
        );
    }
    print!("{table}");
}
