//! Drive the coupled simulator from Standard Workload Format traces — the
//! path a site with real accounting logs would use.
//!
//! This example embeds two small SWF documents (in practice: files exported
//! from the resource managers), parses them, associates jobs with the
//! 2-minute window rule, and coschedules them.
//!
//! ```text
//! cargo run --release --example swf_workload
//! ```

use coupled_cosched::cosched::{CoschedConfig, CoupledConfig, CoupledSimulation, Scheme};
use coupled_cosched::prelude::*;
use coupled_cosched::sim::SimDuration;
use coupled_cosched::workload::{pairing, swf};
use std::io::Cursor;

// Fields: id submit wait runtime procs avgcpu mem reqprocs reqtime reqmem
//         status uid gid exe queue part prev think
const COMPUTE_SWF: &str = "\
; compute machine, 64 nodes
1 0    -1 3600 32 -1 -1 32 7200 -1 1 -1 -1 -1 -1 -1 -1 -1
2 60   -1 1800 16 -1 -1 16 3600 -1 1 -1 -1 -1 -1 -1 -1 -1
3 900  -1 2400 48 -1 -1 48 4800 -1 1 -1 -1 -1 -1 -1 -1 -1
4 3700 -1 1200 16 -1 -1 16 2400 -1 1 -1 -1 -1 -1 -1 -1 -1
";

const ANALYSIS_SWF: &str = "\
; analysis machine, 8 nodes
1 30   -1 3600 4 -1 -1 4 7200 -1 1 -1 -1 -1 -1 -1 -1 -1
2 2000 -1  900 8 -1 -1 8 1800 -1 1 -1 -1 -1 -1 -1 -1 -1
3 3650 -1 1200 4 -1 -1 4 2400 -1 1 -1 -1 -1 -1 -1 -1 -1
";

fn main() {
    let (mut compute, skipped_c) =
        swf::read_swf(Cursor::new(COMPUTE_SWF), MachineId(0)).expect("valid SWF");
    let (mut analysis, skipped_a) =
        swf::read_swf(Cursor::new(ANALYSIS_SWF), MachineId(1)).expect("valid SWF");
    println!(
        "parsed {} compute jobs ({} skipped), {} analysis jobs ({} skipped)",
        compute.len(),
        skipped_c,
        analysis.len(),
        skipped_a
    );

    let pairs = pairing::pair_by_window(&mut compute, &mut analysis, SimDuration::from_mins(2));
    println!("window rule associated {pairs} pairs:");
    for j in compute.jobs().iter().filter(|j| j.is_paired()) {
        println!("  compute {} ↔ analysis {}", j.id, j.mate.unwrap().job);
    }

    let config = CoupledConfig {
        machines: [
            MachineConfig::flat("compute", MachineId(0), 64),
            MachineConfig::flat("analysis", MachineId(1), 8),
        ],
        cosched: [
            CoschedConfig::paper(Scheme::Yield),
            CoschedConfig::paper(Scheme::Yield),
        ],
        max_events: 100_000,
    };
    let report = CoupledSimulation::new(config, [compute, analysis]).run();
    println!(
        "simulation finished: {} events, pairs synchronized = {}, max offset = {}",
        report.events,
        report.all_pairs_synchronized(),
        report.max_pair_offset()
    );
    for (m, name) in [(0usize, "compute"), (1, "analysis")] {
        let s = &report.summaries[m];
        println!(
            "{name:>9}: {} jobs, avg wait {:.1} min, avg slowdown {:.2}, utilization {:.1}%",
            s.jobs,
            s.avg_wait_mins,
            s.avg_slowdown,
            s.utilization * 100.0
        );
    }
    assert!(report.all_pairs_synchronized());
}
