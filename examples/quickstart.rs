//! Quickstart: coschedule one pair of associated jobs across two machines.
//!
//! Machine A is a 128-node compute cluster, machine B a 16-node analysis
//! cluster. Job `a1` (compute) and job `b1` (analysis) are associated mates:
//! they must start at the same instant even though each machine schedules
//! independently. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use coupled_cosched::cosched::CoschedConfig;
use coupled_cosched::prelude::*;
use coupled_cosched::sim::SimDuration;
use coupled_cosched::workload::MateRef;

fn main() {
    // Two machines with their own resource managers and policies.
    let machine_a = MachineConfig::flat("compute", MachineId(0), 128);
    let machine_b = MachineConfig::flat("analysis", MachineId(1), 16);

    // A small workload. Unpaired filler keeps machine B busy so the pair
    // actually has to wait for its rendezvous.
    let mk = |machine: usize, id: u64, submit: u64, size: u64, runtime_mins: u64| {
        Job::new(
            JobId(id),
            MachineId(machine),
            coupled_cosched::sim::SimTime::from_secs(submit),
            size,
            SimDuration::from_mins(runtime_mins),
            SimDuration::from_mins(runtime_mins * 2),
        )
    };

    let mut jobs_a = vec![
        mk(0, 1, 0, 96, 60),    // big compute job
        mk(0, 2, 300, 64, 120), // the paired compute job, submitted at t+5min
    ];
    let mut jobs_b = vec![
        mk(1, 1, 0, 16, 45),   // analysis filler occupying all of B
        mk(1, 2, 360, 12, 90), // the paired analysis job, submitted at t+6min
    ];

    // Declare the association (in production this is a pair token in both
    // job submissions).
    jobs_a[1].mate = Some(MateRef {
        machine: MachineId(1),
        job: JobId(2),
    });
    jobs_b[1].mate = Some(MateRef {
        machine: MachineId(0),
        job: JobId(2),
    });

    let traces = [
        Trace::from_jobs(MachineId(0), jobs_a),
        Trace::from_jobs(MachineId(1), jobs_b),
    ];

    // Hold on the compute side, yield on the analysis side, with the
    // paper's standard 20-minute deadlock-release.
    let config = CoupledConfig {
        machines: [machine_a, machine_b],
        cosched: [
            CoschedConfig::paper(Scheme::Hold),
            CoschedConfig::paper(Scheme::Yield),
        ],
        max_events: 100_000,
    };

    let report = CoupledSimulation::new(config, traces).run();

    println!(
        "simulated {} events, horizon {}",
        report.events, report.horizon
    );
    for (m, name) in [(0, "compute"), (1, "analysis")] {
        for r in &report.records[m] {
            println!(
                "{name:>9} {}: submitted {:>6}s, started {:>6}s, waited {}, paired = {}",
                r.id,
                r.submit.as_secs(),
                r.start.as_secs(),
                r.wait(),
                r.paired
            );
        }
    }
    println!(
        "pair start offset: {} (synchronized = {})",
        report.max_pair_offset(),
        report.all_pairs_synchronized()
    );
    assert!(
        report.all_pairs_synchronized(),
        "quickstart pair must start together"
    );
}
