//! Figure 2 of the paper, reproduced: the hold-hold deadlock and its
//! resolution by the periodic-release enhancement.
//!
//! Machine A has job `a1` holding 6 nodes while waiting for mate `b1`,
//! which queues on machine B requesting 6 nodes; machine B has job `b2`
//! holding 6 nodes while waiting for mate `a2`, which queues on machine A
//! requesting 6 nodes. Each machine has 10 nodes: neither queued mate fits
//! while the holds persist — circular wait.
//!
//! ```text
//! cargo run --release --example deadlock_demo
//! ```

use coupled_cosched::cosched::{CoschedConfig, CoupledConfig, CoupledSimulation, Scheme};
use coupled_cosched::prelude::*;
use coupled_cosched::sim::{SimDuration, SimTime};
use coupled_cosched::workload::MateRef;

fn traces() -> [Trace; 2] {
    let mk = |machine: usize, id: u64, submit: u64| {
        Job::new(
            JobId(id),
            MachineId(machine),
            SimTime::from_secs(submit),
            6,
            SimDuration::from_mins(30),
            SimDuration::from_mins(60),
        )
    };
    // a1 arrives first on A and will hold; b2 arrives first on B and will
    // hold; the mates arrive shortly after and cannot fit (6 + 6 > 10).
    let mut a1 = mk(0, 1, 0);
    let mut a2 = mk(0, 2, 60);
    let mut b2 = mk(1, 2, 0);
    let mut b1 = mk(1, 1, 60);
    a1.mate = Some(MateRef {
        machine: MachineId(1),
        job: JobId(1),
    });
    b1.mate = Some(MateRef {
        machine: MachineId(0),
        job: JobId(1),
    });
    a2.mate = Some(MateRef {
        machine: MachineId(1),
        job: JobId(2),
    });
    b2.mate = Some(MateRef {
        machine: MachineId(0),
        job: JobId(2),
    });
    [
        Trace::from_jobs(MachineId(0), vec![a1, a2]),
        Trace::from_jobs(MachineId(1), vec![b1, b2]),
    ]
}

fn config(release: Option<SimDuration>) -> CoupledConfig {
    CoupledConfig {
        machines: [
            MachineConfig::flat("A", MachineId(0), 10),
            MachineConfig::flat("B", MachineId(1), 10),
        ],
        cosched: [
            // Cap cleared: the Fig. 2 jobs hold 6 of 10 nodes by design.
            CoschedConfig::paper(Scheme::Hold)
                .with_release_period(release)
                .with_max_held_fraction(None),
            CoschedConfig::paper(Scheme::Hold)
                .with_release_period(release)
                .with_max_held_fraction(None),
        ],
        max_events: 10_000,
    }
}

fn main() {
    println!("--- hold-hold WITHOUT the release enhancement ---");
    let report = CoupledSimulation::new(config(None), traces()).run();
    println!(
        "deadlocked = {}, unfinished jobs = {:?} (the circular wait of Fig. 2)",
        report.deadlocked, report.unfinished
    );
    assert!(report.deadlocked);

    println!();
    println!("--- hold-hold WITH the 20-minute release enhancement ---");
    let report = CoupledSimulation::new(config(Some(SimDuration::from_mins(20))), traces()).run();
    println!(
        "deadlocked = {}, unfinished = {:?}, forced releases = {}",
        report.deadlocked, report.unfinished, report.forced_releases
    );
    for m in 0..2 {
        for r in &report.records[m] {
            println!(
                "  machine {m} {}: ready at {}, started at {}, sync time {}",
                r.id,
                r.first_ready.map_or("-".to_string(), |t| t.to_string()),
                r.start,
                r.sync_time()
            );
        }
    }
    assert!(!report.deadlocked);
    assert!(report.all_pairs_synchronized());
    println!("pairs synchronized = {}", report.all_pairs_synchronized());
}
