//! Well-formedness check for exported Chrome trace-event JSON — the CI
//! smoke step behind `analyze export --format perfetto`.
//!
//! ```text
//! cargo run --example check_perfetto -- /tmp/run.perfetto.json
//! ```
//!
//! Validates, with no network and no Perfetto binary:
//!
//! * the file parses as JSON with a `traceEvents` array;
//! * every event carries `ph` and `pid`, plus the per-phase required keys
//!   (`ts`+`dur` for `X`, `ts`+`id` for `b`/`e`/`s`/`f`, `s` for `i`,
//!   `args` for `M`);
//! * every flow start (`s`) has a matching finish (`f`) with the same id —
//!   and the pair crosses processes, since the exporter only draws flows
//!   for cross-machine RPC edges;
//! * async `b`/`e` pairs balance per id.
//!
//! Exits nonzero with a description of the first violation.

use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn check(path: &str) -> Result<String, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let v: Value = serde_json::from_str(&raw).map_err(|e| format!("{path} is not JSON: {e}"))?;
    let events = v
        .get("traceEvents")
        .ok_or("missing \"traceEvents\" key")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }

    // (id → (pid of s, pid of f)) for flow pairing; (id → balance) for b/e.
    let mut flow_s: BTreeMap<u64, u64> = BTreeMap::new();
    let mut flow_f: BTreeMap<u64, u64> = BTreeMap::new();
    let mut async_balance: BTreeMap<u64, i64> = BTreeMap::new();
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();

    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no \"ph\": {e}"))?;
        let pid = e
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i} ({ph}) has no numeric \"pid\": {e}"))?;
        let need = |key: &str| {
            e.get(key)
                .ok_or_else(|| format!("event {i} ({ph}) lacks \"{key}\": {e}"))
        };
        let need_id = || {
            e.get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event {i} ({ph}) lacks numeric \"id\": {e}"))
        };
        let ph_key = match ph {
            "X" | "b" | "e" | "s" | "f" | "i" | "M" => ph,
            other => return Err(format!("event {i} has unexpected ph {other:?}")),
        };
        *counts.entry(ph_key).or_insert(0) += 1;
        match ph {
            "X" => {
                need("ts")?;
                need("dur")?;
                need("name")?;
            }
            "b" | "e" => {
                need("ts")?;
                *async_balance.entry(need_id()?).or_insert(0) += if ph == "b" { 1 } else { -1 };
            }
            "s" => {
                need("ts")?;
                if flow_s.insert(need_id()?, pid).is_some() {
                    return Err(format!("duplicate flow start id at event {i}: {e}"));
                }
            }
            "f" => {
                need("ts")?;
                if e.get("bp").and_then(Value::as_str) != Some("e") {
                    return Err(format!("flow finish without bp:\"e\" at event {i}: {e}"));
                }
                if flow_f.insert(need_id()?, pid).is_some() {
                    return Err(format!("duplicate flow finish id at event {i}: {e}"));
                }
            }
            "i" => {
                need("ts")?;
                if e.get("s").and_then(Value::as_str).is_none() {
                    return Err(format!("instant without scope \"s\" at event {i}: {e}"));
                }
            }
            "M" => {
                need("args")?;
            }
            _ => unreachable!(),
        }
    }

    for (id, s_pid) in &flow_s {
        let f_pid = flow_f
            .get(id)
            .ok_or_else(|| format!("flow start id {id} has no matching finish"))?;
        if s_pid == f_pid {
            return Err(format!(
                "flow id {id} stays inside pid {s_pid} — RPC flows must cross machines"
            ));
        }
    }
    if let Some((id, _)) = flow_f.iter().find(|(id, _)| !flow_s.contains_key(id)) {
        return Err(format!("flow finish id {id} has no matching start"));
    }
    for (id, balance) in &async_balance {
        // An unclosed pair root legitimately exports `b` without `e`
        // (balance +1); an `e` without `b` (negative) is malformed.
        if *balance < 0 {
            return Err(format!("async id {id} ends more than it begins"));
        }
    }

    let summary: Vec<String> = counts.iter().map(|(ph, n)| format!("{ph}:{n}")).collect();
    Ok(format!(
        "{path}: {} events ok ({}) — {} cross-machine flow pair(s)",
        events.len(),
        summary.join(" "),
        flow_s.len()
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: check_perfetto <trace.perfetto.json>");
        return ExitCode::FAILURE;
    };
    match check(&path) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("check_perfetto: {e}");
            ExitCode::FAILURE
        }
    }
}
