//! Regenerate the golden trace fixture `tests/fixtures/hy_seed13.jsonl`.
//!
//! Run after an *intentional* trace-schema change:
//!
//! ```text
//! cargo run --example regen_fixture
//! ```
//!
//! The parameters here must stay identical to `fixture_records()` in
//! `tests/trace_analysis.rs`, which asserts the committed file matches a
//! regenerated run byte for byte.

use coupled_cosched::cosched::{CoschedConfig, CoupledConfig, CoupledSimulation, SchemeCombo};
use coupled_cosched::obs::write_trace_string;
use coupled_cosched::prelude::*;
use coupled_cosched::sim::{SimDuration, SimRng};
use coupled_cosched::workload::{pairing, MachineModel, TraceGenerator};

fn main() {
    let rng = SimRng::seed_from_u64(13);
    let model = MachineModel::eureka();
    let mut a = TraceGenerator::new(model.clone(), MachineId(0))
        .span(SimDuration::from_hours(12))
        .target_utilization(0.4)
        .generate(&mut rng.fork(0));
    let mut b = TraceGenerator::new(model, MachineId(1))
        .span(SimDuration::from_hours(12))
        .target_utilization(0.4)
        .generate(&mut rng.fork(1));
    pairing::pair_exact_proportion(
        &mut a,
        &mut b,
        0.25,
        SimDuration::from_mins(2),
        &mut rng.fork(2),
    );
    let cfg = CoupledConfig {
        machines: [
            MachineConfig::eureka(MachineId(0)),
            MachineConfig::eureka(MachineId(1)),
        ],
        cosched: [
            CoschedConfig::paper(SchemeCombo::HY.of(0)),
            CoschedConfig::paper(SchemeCombo::HY.of(1)),
        ],
        max_events: 1_000_000,
    };
    let arts = CoupledSimulation::with_observer(cfg, [a, b], SinkObserver::new(VecSink::default()))
        .run_traced();
    let records = arts.observer.into_sink().records;
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/hy_seed13.jsonl"
    );
    std::fs::write(path, write_trace_string(&records)).expect("write fixture");
    println!("wrote {} records to {path}", records.len());
}
