//! Two *live* scheduling domains coscheduling over the real TCP protocol —
//! the deployment shape of the paper, compressed to wall-clock seconds.
//!
//! Each domain runs in its own thread with its own resource manager,
//! serves the coordination protocol on a localhost socket, and pumps its
//! scheduler once per tick. The compute domain uses hold, the analysis
//! domain yield; the associated pair must start at the same tick.
//!
//! ```text
//! cargo run --release --example live_protocol
//! ```

use coupled_cosched::cosched::config::CoschedConfig;
use coupled_cosched::cosched::live::LiveDomain;
use coupled_cosched::cosched::{MateRegistry, Scheme};
use coupled_cosched::prelude::*;
use coupled_cosched::proto::tcp;
use coupled_cosched::proto::tcp::TcpTransport;
use coupled_cosched::sched::Machine;
use coupled_cosched::sim::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A shared tick counter stands in for the wall clock (1 tick = 1
    // simulated minute; we advance it manually so the demo finishes fast).
    let clock = Arc::new(AtomicU64::new(0));
    let now = {
        let clock = Arc::clone(&clock);
        move || SimTime::from_secs(clock.load(Ordering::SeqCst) * 60)
    };

    let mut registry = MateRegistry::new();
    registry.insert_pair((MachineId(0), JobId(1)), (MachineId(1), JobId(1)));

    let compute = LiveDomain::new(
        Machine::new(MachineConfig::flat("compute", MachineId(0), 64)),
        CoschedConfig::paper(Scheme::Hold),
        registry.clone(),
        MachineId(1),
    );
    let analysis = LiveDomain::new(
        Machine::new(MachineConfig::flat("analysis", MachineId(1), 8)),
        CoschedConfig::paper(Scheme::Yield),
        registry,
        MachineId(0),
    );

    // Each domain serves the protocol for its peer.
    let srv_compute = tcp::serve(
        "127.0.0.1:0".parse().unwrap(),
        compute.service({
            let now = now.clone();
            move || now()
        }),
    )
    .expect("bind compute service");
    let srv_analysis = tcp::serve(
        "127.0.0.1:0".parse().unwrap(),
        analysis.service({
            let now = now.clone();
            move || now()
        }),
    )
    .expect("bind analysis service");
    println!(
        "compute domain serving on {}, analysis domain on {}",
        srv_compute.addr(),
        srv_analysis.addr()
    );

    let mut compute_to_analysis =
        TcpTransport::connect(srv_analysis.addr(), Duration::from_secs(2)).expect("connect");
    let mut analysis_to_compute =
        TcpTransport::connect(srv_compute.addr(), Duration::from_secs(2)).expect("connect");

    let job = |machine: usize, id: u64, size: u64, runtime_mins: u64| {
        Job::new(
            JobId(id),
            MachineId(machine),
            now(),
            size,
            SimDuration::from_mins(runtime_mins),
            SimDuration::from_mins(runtime_mins * 2),
        )
    };

    // Tick 0: filler occupies the whole analysis cluster; the compute half
    // of the pair arrives and must wait for its mate.
    analysis.submit(job(1, 9, 8, 5), now());
    analysis.pump(now(), &mut analysis_to_compute);
    compute.submit(job(0, 1, 32, 10), now());
    compute.pump(now(), &mut compute_to_analysis);
    println!(
        "tick 0: compute holds {:?} (mate not submitted yet)",
        compute.held()
    );

    // Tick 2: the analysis mate arrives but the filler still runs.
    clock.store(2, Ordering::SeqCst);
    analysis.submit(job(1, 1, 8, 10), now());
    analysis.pump(now(), &mut analysis_to_compute);
    println!(
        "tick 2: analysis mate queued (cluster full), compute still holds {:?}",
        compute.held()
    );

    // Tick 5: the filler finishes; the analysis domain pumps, sees the
    // compute mate holding, and both start — simultaneously.
    clock.store(5, Ordering::SeqCst);
    analysis.complete_due(now());
    analysis.pump(now(), &mut analysis_to_compute);
    compute.pump(now(), &mut compute_to_analysis);
    println!(
        "tick 5: compute holds {:?} (should be empty — pair started)",
        compute.held()
    );

    // Let everything finish.
    clock.store(30, Ordering::SeqCst);
    compute.complete_due(now());
    analysis.complete_due(now());

    let rc = compute.records();
    let ra = analysis.records();
    let cstart = rc
        .iter()
        .find(|r| r.id == JobId(1))
        .expect("compute job ran")
        .start;
    let astart = ra
        .iter()
        .find(|r| r.id == JobId(1))
        .expect("analysis job ran")
        .start;
    println!(
        "pair started at compute t={} / analysis t={} — synchronized = {}",
        cstart,
        astart,
        cstart == astart
    );
    assert_eq!(cstart, astart, "associated jobs must start simultaneously");

    srv_compute.shutdown();
    srv_analysis.shutdown();
}
