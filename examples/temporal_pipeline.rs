//! Inter-job temporal constraints demo (§VI future work): a simulation /
//! analysis pipeline where the strict co-start of the base mechanism is
//! relaxed two ways:
//!
//! * the *monitoring* dashboard should come up within 10 minutes of the
//!   simulation (soft co-start, `StartWithin`);
//! * the *checkpoint analysis* must start between 30 and 90 minutes after
//!   the simulation (ordered, `StartAfter` — it needs the first checkpoint
//!   on disk, but late enough data would age out of the burst buffer).
//!
//! ```text
//! cargo run --release --example temporal_pipeline
//! ```

use coupled_cosched::cosched::config::CoschedConfig;
use coupled_cosched::cosched::temporal::{
    ConstraintInstance, TemporalConstraint, TemporalSimulation,
};
use coupled_cosched::cosched::Scheme;
use coupled_cosched::prelude::*;
use coupled_cosched::sim::{SimDuration, SimTime};

fn job(machine: usize, id: u64, submit_mins: u64, size: u64, runtime_mins: u64) -> Job {
    Job::new(
        JobId(id),
        MachineId(machine),
        SimTime::from_secs(submit_mins * 60),
        size,
        SimDuration::from_mins(runtime_mins),
        SimDuration::from_mins(runtime_mins * 2),
    )
}

fn main() {
    let machines = [
        MachineConfig::flat("compute", MachineId(0), 256),
        MachineConfig::flat("analysis", MachineId(1), 32),
    ];
    let cosched = [
        CoschedConfig::paper(Scheme::Hold),
        CoschedConfig::paper(Scheme::Yield),
    ];

    let traces = [
        Trace::from_jobs(
            MachineId(0),
            vec![
                job(0, 1, 0, 192, 240), // the simulation, 4 hours
            ],
        ),
        Trace::from_jobs(
            MachineId(1),
            vec![
                job(1, 9, 0, 32, 8),  // unrelated job briefly hogging the analysis cluster
                job(1, 1, 1, 8, 200), // monitoring dashboard
                job(1, 2, 1, 16, 60), // checkpoint analysis
            ],
        ),
    ];

    let constraints = vec![
        ConstraintInstance {
            a: JobId(1),
            b: JobId(1),
            constraint: TemporalConstraint::StartWithin {
                window: SimDuration::from_mins(10),
            },
        },
        ConstraintInstance {
            a: JobId(1),
            b: JobId(2),
            constraint: TemporalConstraint::StartAfter {
                min_delay: SimDuration::from_mins(30),
                max_delay: SimDuration::from_mins(90),
            },
        },
    ];

    let report = TemporalSimulation::new(machines, cosched, traces, constraints).run();

    println!(
        "events: {}, deadlocked: {}",
        report.events, report.deadlocked
    );
    for (m, recs) in report.records.iter().enumerate() {
        for r in recs {
            println!(
                "machine {m} {}: submit {:>5} start {:>6}",
                r.id,
                r.submit.as_secs(),
                r.start
            );
        }
    }
    for o in &report.outcomes {
        println!(
            "constraint {:?} a={} b={}: offset {}{}, satisfied = {}",
            o.instance.constraint,
            o.instance.a,
            o.instance.b,
            o.offset,
            if o.b_before_a { " (b first)" } else { "" },
            o.satisfied
        );
    }
    assert!(report.all_satisfied(), "pipeline constraints must hold");
    println!("all constraints satisfied");
}
