//! N-way coscheduling demo — the paper's §II-B motivation: "the weather
//! forecasting models run at NASA wherein multiple climate analysis models
//! are executed concurrently … some of the models may be optimized to run
//! on GPU-based systems while others are tailored for CPU-based systems",
//! and §VI's future work of "N-way coscheduling on more than two
//! scheduling domains".
//!
//! Three machines — a CPU cluster, a GPU cluster, and a visualization
//! wall — must co-start a three-member forecasting group while each also
//! runs its own background workload.
//!
//! ```text
//! cargo run --release --example nway_weather
//! ```

use coupled_cosched::cosched::config::CoschedConfig;
use coupled_cosched::cosched::nway::{GroupId, GroupRegistry, NwayConfig, NwaySimulation};
use coupled_cosched::cosched::Scheme;
use coupled_cosched::prelude::*;
use coupled_cosched::sim::{SimDuration, SimTime};

fn job(machine: usize, id: u64, submit_mins: u64, size: u64, runtime_mins: u64) -> Job {
    Job::new(
        JobId(id),
        MachineId(machine),
        SimTime::from_secs(submit_mins * 60),
        size,
        SimDuration::from_mins(runtime_mins),
        SimDuration::from_mins(runtime_mins * 2),
    )
}

fn main() {
    // The coupled triple.
    let config = NwayConfig {
        machines: vec![
            MachineConfig::flat("cpu-cluster", MachineId(0), 512),
            MachineConfig::flat("gpu-cluster", MachineId(1), 64),
            MachineConfig::flat("viz-wall", MachineId(2), 16),
        ],
        cosched: vec![
            CoschedConfig::paper(Scheme::Hold),
            CoschedConfig::paper(Scheme::Yield),
            CoschedConfig::paper(Scheme::Yield),
        ],
        max_events: 100_000,
    };

    // The forecasting group: atmosphere model (CPU), ocean model (GPU),
    // live visualization (wall) — submitted minutes apart by different
    // teams, must start together.
    let mut registry = GroupRegistry::new();
    registry.insert_group(
        GroupId(1),
        vec![
            (MachineId(0), JobId(100)),
            (MachineId(1), JobId(100)),
            (MachineId(2), JobId(100)),
        ],
    );

    let traces = vec![
        Trace::from_jobs(
            MachineId(0),
            vec![
                job(0, 1, 0, 400, 90),    // background CFD run
                job(0, 100, 5, 256, 120), // atmosphere model (group)
            ],
        ),
        Trace::from_jobs(
            MachineId(1),
            vec![
                job(1, 1, 0, 64, 45),    // background training job, whole cluster
                job(1, 100, 8, 32, 120), // ocean model (group)
            ],
        ),
        Trace::from_jobs(
            MachineId(2),
            vec![
                job(2, 1, 0, 16, 30),    // someone's movie rendering
                job(2, 100, 2, 12, 120), // live visualization (group)
            ],
        ),
    ];

    let report = NwaySimulation::new(config, traces, registry).run();

    println!(
        "events: {}, deadlocked: {}",
        report.events, report.deadlocked
    );
    for (m, recs) in report.records.iter().enumerate() {
        for r in recs {
            println!(
                "machine {m} {}: submit {:>5}s start {:>6}s {}",
                r.id,
                r.submit.as_secs(),
                r.start.as_secs(),
                if r.paired { "(group member)" } else { "" }
            );
        }
    }
    println!(
        "group spread: {:?} — synchronized = {}",
        report.group_spreads,
        report.all_groups_synchronized()
    );
    assert!(
        report.all_groups_synchronized(),
        "3-way group must co-start"
    );

    // The rendezvous is gated by the slowest machine: the CPU cluster's
    // background CFD run occupies 400 of 512 nodes for 90 minutes, leaving
    // no room for the 256-node atmosphere model until it ends — so the
    // whole group starts at t = 90 min.
    let start = report.records[1]
        .iter()
        .find(|r| r.id == JobId(100))
        .expect("ocean model ran")
        .start;
    assert_eq!(start, SimTime::from_secs(90 * 60));
    println!("group started at {start} (gated by the CPU cluster's backlog)");
}
