//! Live telemetry plane, end to end: the streaming monitor is a pure
//! consumer (teeing it changes neither the primary trace bytes nor the
//! report), its online aggregates agree with offline trace reconstruction,
//! alert rules fire and resolve over real runs, and the embedded HTTP
//! endpoints serve what the monitor saw.

use coupled_cosched::cosched::{CoschedConfig, CoupledConfig, CoupledSimulation, SchemeCombo};
use coupled_cosched::prelude::*;
use coupled_cosched::sim::{SimDuration, SimRng};
use coupled_cosched::telemetry::{http_get, MonitorProvider, TelemetryServer};
use coupled_cosched::workload::{pairing, MachineModel, TraceGenerator};
use std::time::Duration;

fn workload(seed: u64) -> [Trace; 2] {
    let rng = SimRng::seed_from_u64(seed);
    let model = MachineModel::eureka();
    let mut a = TraceGenerator::new(model.clone(), MachineId(0))
        .span(SimDuration::from_days(2))
        .target_utilization(0.6)
        .generate(&mut rng.fork(0));
    let mut b = TraceGenerator::new(model, MachineId(1))
        .span(SimDuration::from_days(2))
        .target_utilization(0.6)
        .generate(&mut rng.fork(1));
    pairing::pair_exact_proportion(
        &mut a,
        &mut b,
        0.15,
        SimDuration::from_mins(2),
        &mut rng.fork(2),
    );
    [a, b]
}

fn config(combo: SchemeCombo) -> CoupledConfig {
    CoupledConfig {
        machines: [
            MachineConfig::eureka(MachineId(0)),
            MachineConfig::eureka(MachineId(1)),
        ],
        cosched: [
            CoschedConfig::paper(combo.of(0)),
            CoschedConfig::paper(combo.of(1)),
        ],
        max_events: 1_000_000,
    }
}

fn capacities(cfg: &CoupledConfig) -> [u64; 2] {
    [cfg.machines[0].capacity, cfg.machines[1].capacity]
}

/// The acceptance-criterion determinism guard: attaching a streaming
/// monitor through a tee must leave the JSONL trace byte-identical and the
/// simulation report unchanged.
#[test]
fn teed_monitor_keeps_trace_and_report_identical() {
    let cfg = config(SchemeCombo::HY);

    let plain = CoupledSimulation::with_observer(
        cfg.clone(),
        workload(13),
        SinkObserver::new(JsonlSink::new(Vec::new())),
    )
    .run_traced();
    let plain_bytes = plain.observer.into_sink().into_inner();

    let caps = capacities(&cfg);
    let monitor = StreamingMonitor::with_rules(default_rules()).with_capacities(&caps);
    let teed = CoupledSimulation::with_observer(
        cfg,
        workload(13),
        TeeObserver::new(
            SinkObserver::new(JsonlSink::new(Vec::new())),
            monitor.clone(),
        ),
    )
    .run_traced();
    let teed_bytes = teed.observer.first.into_sink().into_inner();

    assert!(!plain_bytes.is_empty());
    assert_eq!(
        plain_bytes, teed_bytes,
        "teeing the monitor must not perturb the primary trace"
    );
    assert_eq!(plain.report.records, teed.report.records);
    assert_eq!(plain.report.stats, teed.report.stats);
    assert_eq!(plain.report.metrics, teed.report.metrics);
    assert_eq!(plain.report.events, teed.report.events);
    assert_eq!(plain.report.pair_offsets, teed.report.pair_offsets);

    // The monitor did consume the stream while staying invisible.
    let snap = monitor.snapshot();
    assert!(snap.events > 0);
    assert_eq!(snap.finished, snap.submitted);
}

/// Online aggregates must agree with what the offline analyzers derive
/// from the recorded trace — same stream, same answers.
#[test]
fn online_snapshot_matches_offline_reconstruction() {
    let cfg = config(SchemeCombo::HY);
    let caps = capacities(&cfg);
    let monitor = StreamingMonitor::new().with_capacities(&caps);
    let arts = CoupledSimulation::with_observer(
        cfg,
        workload(13),
        TeeObserver::new(SinkObserver::new(VecSink::default()), monitor.clone()),
    )
    .run_traced();
    let report = arts.report;
    assert!(!report.deadlocked);
    monitor.finish(report.deadlocked);
    let snap = monitor.snapshot();
    let records = arts.observer.first.into_sink().records;
    let offline = LifecycleSet::from_records(&records).expect("trace reconstructs");

    // Job population and terminal states.
    assert_eq!(snap.submitted as usize, offline.jobs.len());
    let offline_finished = offline.jobs.values().filter(|j| j.end.is_some()).count();
    assert_eq!(snap.finished as usize, offline_finished);
    assert_eq!(snap.running, 0);
    assert_eq!(snap.queued, 0);
    assert_eq!(snap.held, 0);
    assert!(snap.drained());

    // Node-seconds integrated online equal Σ size × runtime offline.
    for m in 0..2 {
        let offline_node_secs: u64 = offline
            .jobs
            .values()
            .filter(|j| j.machine == m)
            .map(|j| j.size * (j.end.unwrap() - j.start.unwrap()))
            .sum();
        assert_eq!(
            snap.machines[m].used_node_seconds, offline_node_secs,
            "machine {m} node-seconds"
        );
    }

    // Protocol and scheme counters match the deterministic report.
    assert_eq!(snap.rpc_calls, report.stats.rpc_calls);
    assert_eq!(snap.rpc_timeouts, report.stats.rpc_timeouts);
    assert_eq!(snap.holds_placed, report.stats.holds);
    assert_eq!(snap.yields, report.stats.yields);
    assert_eq!(snap.forced_releases, report.forced_releases);

    // Paired jobs rendezvoused, so the latency histogram is populated.
    assert!(snap.rendezvous_latency.count > 0);
}

/// An alert rule demonstrably fires during a run and resolves once the
/// condition clears — with the transitions kept in monitor-private history,
/// never in the primary trace.
#[test]
fn alert_fires_and_resolves_over_a_real_run() {
    let cfg = config(SchemeCombo::HY);
    let caps = capacities(&cfg);
    let rule = AlertRule::parse("busy: running > 0").expect("rule parses");
    let monitor = StreamingMonitor::with_rules(vec![rule]).with_capacities(&caps);
    let arts = CoupledSimulation::with_observer(cfg, workload(13), monitor.clone()).run_traced();
    monitor.finish(arts.report.deadlocked);

    let snap = monitor.snapshot();
    assert!(snap.alerts_raised_total >= 1, "alert never fired");
    assert!(snap.alerts_resolved_total >= 1, "alert never resolved");
    assert!(
        snap.active_alerts.is_empty(),
        "drained run must end with no active alerts: {:?}",
        snap.active_alerts
    );

    let history = monitor.alert_history();
    let raised = history
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::AlertRaised { .. }))
        .count();
    let resolved = history
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::AlertResolved { .. }))
        .count();
    assert!(raised >= 1 && resolved >= 1, "{history:?}");
    // Raise precedes resolve in history order.
    let first_raise = history
        .iter()
        .position(|r| matches!(r.event, TraceEvent::AlertRaised { .. }))
        .unwrap();
    let first_resolve = history
        .iter()
        .position(|r| matches!(r.event, TraceEvent::AlertResolved { .. }))
        .unwrap();
    assert!(first_raise < first_resolve);
}

/// The embedded endpoints serve the monitor's view: Prometheus families on
/// `/metrics`, liveness on `/healthz`, and a round-trippable snapshot on
/// `/state`.
#[test]
fn telemetry_endpoints_serve_simulation_state() {
    let cfg = config(SchemeCombo::HY);
    let caps = capacities(&cfg);
    let monitor = StreamingMonitor::with_rules(default_rules()).with_capacities(&caps);
    let arts = CoupledSimulation::with_observer(cfg, workload(13), monitor.clone()).run_traced();
    monitor.finish(arts.report.deadlocked);

    let mut server =
        TelemetryServer::spawn("127.0.0.1:0", MonitorProvider::new(monitor.clone())).unwrap();
    let addr = server.addr().to_string();
    let timeout = Duration::from_secs(5);

    let (code, metrics) = http_get(&addr, "/metrics", timeout).unwrap();
    assert_eq!(code, 200);
    assert!(
        metrics.contains("# TYPE cosched_utilization gauge"),
        "{metrics}"
    );
    assert!(
        metrics.contains("cosched_held_node_proportion"),
        "{metrics}"
    );
    assert!(
        metrics.contains("cosched_rendezvous_latency_seconds_bucket"),
        "{metrics}"
    );
    assert!(
        metrics.contains("cosched_rendezvous_latency_seconds_bucket{le=\"+Inf\"}"),
        "{metrics}"
    );

    let (code, health) = http_get(&addr, "/healthz", timeout).unwrap();
    assert_eq!(code, 200);
    assert!(health.contains("\"status\":\"drained\""), "{health}");

    let (code, state) = http_get(&addr, "/state", timeout).unwrap();
    assert_eq!(code, 200);
    let roundtrip: TelemetrySnapshot = serde_json::from_str(&state).unwrap();
    assert_eq!(roundtrip, monitor.snapshot());

    server.shutdown();
}
