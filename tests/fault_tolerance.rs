//! Fault-tolerance integration tests: Algorithm 1's guarantee that "a job
//! will not wait forever when the remote machine or its mate job is down".

use coupled_cosched::cosched::{CoschedConfig, CoupledConfig, CoupledSimulation, SchemeCombo};
use coupled_cosched::prelude::*;
use coupled_cosched::sim::{SimDuration, SimRng, SimTime};
use coupled_cosched::workload::{pairing, MachineModel, MateRef, TraceGenerator};

fn small_config(combo: SchemeCombo) -> CoupledConfig {
    CoupledConfig {
        machines: [
            MachineConfig::flat("A", MachineId(0), 100),
            MachineConfig::flat("B", MachineId(1), 100),
        ],
        cosched: [
            CoschedConfig::paper(combo.of(0)),
            CoschedConfig::paper(combo.of(1)),
        ],
        max_events: 1_000_000,
    }
}

fn paired_workload(seed: u64) -> [Trace; 2] {
    let rng = SimRng::seed_from_u64(seed);
    let model = MachineModel::eureka().with_runtime(1_200.0, 1.0);
    let mut a = TraceGenerator::new(model.clone(), MachineId(0))
        .span(SimDuration::from_days(1))
        .target_utilization(0.5)
        .generate(&mut rng.fork(0));
    let mut b = TraceGenerator::new(model, MachineId(1))
        .span(SimDuration::from_days(1))
        .target_utilization(0.5)
        .generate(&mut rng.fork(1));
    pairing::pair_exact_proportion(
        &mut a,
        &mut b,
        0.2,
        SimDuration::from_mins(2),
        &mut rng.fork(2),
    );
    [a, b]
}

#[test]
fn dead_remote_never_blocks_local_jobs() {
    for combo in SchemeCombo::ALL {
        let traces = paired_workload(1);
        let n0 = traces[0].len();
        let mut sim = CoupledSimulation::new(small_config(combo), traces);
        sim.set_reachable(1, false);
        let report = sim.run();
        assert!(!report.deadlocked, "{}", combo.label());
        assert_eq!(
            report.records[0].len(),
            n0,
            "{}: every machine-0 job must finish despite the dead peer",
            combo.label()
        );
        // No holding against a dead peer.
        assert_eq!(report.summaries[0].total_holds, 0, "{}", combo.label());
    }
}

#[test]
fn both_remotes_down_degrades_to_independent_scheduling() {
    let traces = paired_workload(2);
    let (n0, n1) = (traces[0].len(), traces[1].len());
    let mut sim = CoupledSimulation::new(small_config(SchemeCombo::HH), traces);
    sim.set_reachable(0, false);
    sim.set_reachable(1, false);
    let report = sim.run();
    assert!(!report.deadlocked);
    assert_eq!(report.records[0].len(), n0);
    assert_eq!(report.records[1].len(), n1);
    assert_eq!(
        report.summaries[0].total_holds + report.summaries[1].total_holds,
        0
    );
    assert_eq!(report.summaries[0].lost_node_hours, 0.0);
}

#[test]
fn unknown_mate_status_starts_job_normally() {
    let traces = paired_workload(3);
    // Mark every machine-1 paired job as status-unknown: machine 0's jobs
    // must all start normally without holding.
    let unknown: Vec<JobId> = traces[1]
        .jobs()
        .iter()
        .filter(|j| j.is_paired())
        .map(|j| j.id)
        .collect();
    assert!(!unknown.is_empty());
    let n0 = traces[0].len();
    let mut sim = CoupledSimulation::new(small_config(SchemeCombo::HH), traces);
    for id in unknown {
        sim.mark_status_unknown(1, id);
    }
    let report = sim.run();
    assert!(!report.deadlocked);
    assert_eq!(report.records[0].len(), n0);
    assert_eq!(
        report.summaries[0].total_holds, 0,
        "unknown status must not cause machine 0 to hold"
    );
}

#[test]
fn status_rpc_timeout_maps_to_unknown_and_starts_normally() {
    // Algorithm 1 line 25: a `get_mate_status` transport timeout is treated
    // as status Unknown and the local job starts normally. The new RPC
    // timeout counters must record the failures.
    let traces = paired_workload(5);
    let n0 = traces[0].len();
    let mut sim = CoupledSimulation::new(small_config(SchemeCombo::HH), traces);
    sim.inject_status_timeout(1, true);
    let report = sim.run();
    assert!(!report.deadlocked);
    assert_eq!(
        report.records[0].len(),
        n0,
        "machine-0 jobs must all finish"
    );
    assert_eq!(
        report.summaries[0].total_holds, 0,
        "a timed-out status probe must not cause machine 0 to hold"
    );
    assert!(report.stats.rpc_timeouts > 0, "timeouts must be counted");
    assert_eq!(
        report.metrics.counter("rpc.timeouts"),
        report.stats.rpc_timeouts,
        "metrics registry must agree with the run counters"
    );
    assert!(
        report.stats.rpc_calls > report.stats.rpc_timeouts,
        "non-status RPCs still succeed"
    );
}

#[test]
fn pair_with_missing_mate_submission_does_not_hang() {
    // The mate is registered (registry knows the pair) but never submitted:
    // the local job holds/yields and is eventually released; the run must
    // terminate with the local job completed.
    let mk = |machine: usize, id: u64, submit: u64| {
        Job::new(
            JobId(id),
            MachineId(machine),
            SimTime::from_secs(submit),
            10,
            SimDuration::from_mins(30),
            SimDuration::from_mins(60),
        )
    };
    // Machine 0: paired job + filler. Machine 1: only filler; the mate (id 7)
    // is never submitted — but pairing validation requires both sides, so
    // model it as "submitted far in the future" instead: mate arrives after
    // everything else completed.
    let mut a1 = mk(0, 1, 0);
    let mut b7 = mk(1, 7, 3 * 86_400);
    a1.mate = Some(MateRef {
        machine: MachineId(1),
        job: JobId(7),
    });
    b7.mate = Some(MateRef {
        machine: MachineId(0),
        job: JobId(1),
    });
    let traces = [
        Trace::from_jobs(MachineId(0), vec![a1, mk(0, 2, 60)]),
        Trace::from_jobs(MachineId(1), vec![mk(1, 1, 0), b7]),
    ];
    let report = CoupledSimulation::new(small_config(SchemeCombo::HH), traces).run();
    assert!(!report.deadlocked);
    assert_eq!(report.unfinished, [0, 0]);
    // The late pair still synchronizes when the mate finally arrives.
    assert!(report.all_pairs_synchronized());
}

#[test]
fn recovery_after_remote_returns() {
    // Only some statuses are unknown; the rest coschedule normally: mixed
    // behaviour in one run.
    let traces = paired_workload(4);
    let first_paired = traces[1]
        .jobs()
        .iter()
        .find(|j| j.is_paired())
        .map(|j| j.id)
        .expect("has pairs");
    let mut sim = CoupledSimulation::new(small_config(SchemeCombo::YY), traces);
    sim.mark_status_unknown(1, first_paired);
    let report = sim.run();
    assert!(!report.deadlocked);
    // All pairs except possibly the poisoned one synchronized.
    let desynced = report.pair_offsets.iter().filter(|d| !d.is_zero()).count();
    assert!(
        desynced <= 1,
        "at most the poisoned pair may desync, got {desynced}"
    );
}
