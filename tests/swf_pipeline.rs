//! Trace-I/O pipeline integration: generate → export SWF → re-import →
//! pair → simulate, verifying the external format is lossless for the
//! fields the simulator consumes.

use coupled_cosched::cosched::{
    CoschedConfig, CoupledConfig, CoupledSimulation, Scheme, SchemeCombo,
};
use coupled_cosched::prelude::*;
use coupled_cosched::sim::{SimDuration, SimRng};
use coupled_cosched::workload::{pairing, swf, MachineModel, TraceGenerator};
use std::io::Cursor;

fn generated(machine: usize, seed: u64) -> Trace {
    let rng = SimRng::seed_from_u64(seed);
    TraceGenerator::new(MachineModel::eureka(), MachineId(machine))
        .span(SimDuration::from_days(1))
        .target_utilization(0.5)
        .generate(&mut rng.fork(machine as u64))
}

#[test]
fn swf_roundtrip_is_lossless() {
    let trace = generated(0, 21);
    let mut buf = Vec::new();
    swf::write_swf(&mut buf, &trace).unwrap();
    let (back, skipped) = swf::read_swf(Cursor::new(&buf), MachineId(0)).unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(trace, back);
}

#[test]
fn simulation_from_swf_matches_simulation_from_memory() {
    let a = generated(0, 22);
    let b = generated(1, 23);

    let via_swf = |t: &Trace, m: usize| {
        let mut buf = Vec::new();
        swf::write_swf(&mut buf, t).unwrap();
        swf::read_swf(Cursor::new(&buf), MachineId(m)).unwrap().0
    };
    let (mut a2, mut b2) = (via_swf(&a, 0), via_swf(&b, 1));
    let (mut a1, mut b1) = (a, b);

    // Same pairing on both copies (deterministic window rule).
    pairing::pair_by_window(&mut a1, &mut b1, SimDuration::from_mins(2));
    pairing::pair_by_window(&mut a2, &mut b2, SimDuration::from_mins(2));

    let config = || CoupledConfig {
        machines: [
            MachineConfig::eureka(MachineId(0)),
            MachineConfig::eureka(MachineId(1)),
        ],
        cosched: [
            CoschedConfig::paper(Scheme::Hold),
            CoschedConfig::paper(Scheme::Yield),
        ],
        max_events: 1_000_000,
    };
    let r1 = CoupledSimulation::new(config(), [a1, b1]).run();
    let r2 = CoupledSimulation::new(config(), [a2, b2]).run();
    assert_eq!(
        r1.records, r2.records,
        "SWF roundtrip must not change outcomes"
    );
    assert_eq!(r1.pair_offsets, r2.pair_offsets);
}

#[test]
fn malformed_swf_is_rejected_not_mangled() {
    let cases = [
        "1 0 5\n",                        // too few fields
        "x 0 -1 10 4 -1 -1 4 10 -1 1\n",  // non-numeric id
        "1 -9 -1 10 4 -1 -1 4 10 -1 1\n", // negative submit
    ];
    for case in cases {
        assert!(
            swf::read_swf(Cursor::new(case), MachineId(0)).is_err(),
            "accepted malformed record {case:?}"
        );
    }
}

#[test]
fn cancelled_jobs_are_skipped_with_count() {
    let text = "\
1 0 -1 600 4 -1 -1 4 1200 -1 1 -1 -1 -1 -1 -1 -1 -1
2 10 -1 -1 -1 -1 -1 -1 -1 -1 0 -1 -1 -1 -1 -1 -1 -1
3 20 -1 600 4 -1 -1 4 1200 -1 1 -1 -1 -1 -1 -1 -1 -1
";
    let (trace, skipped) = swf::read_swf(Cursor::new(text), MachineId(0)).unwrap();
    assert_eq!(trace.len(), 2);
    assert_eq!(skipped, 1);
}

#[test]
fn paired_swf_workload_coschedules() {
    let mut a = generated(0, 24);
    let mut b = generated(1, 25);
    let pairs = pairing::pair_by_window(&mut a, &mut b, SimDuration::from_mins(2));
    if pairs == 0 {
        // Force at least one pair for the assertion below.
        let mut rng = SimRng::seed_from_u64(26);
        pairing::pair_exact_proportion(&mut a, &mut b, 0.1, SimDuration::from_mins(2), &mut rng);
    }
    let report = CoupledSimulation::new(
        CoupledConfig {
            machines: [
                MachineConfig::eureka(MachineId(0)),
                MachineConfig::eureka(MachineId(1)),
            ],
            cosched: [
                CoschedConfig::paper(SchemeCombo::YY.of(0)),
                CoschedConfig::paper(SchemeCombo::YY.of(1)),
            ],
            max_events: 1_000_000,
        },
        [a, b],
    )
    .run();
    assert!(!report.deadlocked);
    assert!(report.all_pairs_synchronized());
}
