//! Trace-analysis acceptance tests: the differ proves determinism (two
//! same-seed runs diff to zero for every job), attribution localizes hold
//! time to hold-side machines, and the committed golden fixture round-trips
//! byte-identically through the reader, reconstructor, and writer.

use coupled_cosched::cosched::{CoschedConfig, CoupledConfig, CoupledSimulation, SchemeCombo};
use coupled_cosched::obs::{read_trace_str, write_trace_string, TraceRecord};
use coupled_cosched::prelude::*;
use coupled_cosched::sim::{SimDuration, SimRng};
use coupled_cosched::trace::SchemeGuess;
use coupled_cosched::workload::{pairing, MachineModel, TraceGenerator};

fn workload(seed: u64) -> [Trace; 2] {
    let rng = SimRng::seed_from_u64(seed);
    let model = MachineModel::eureka();
    let mut a = TraceGenerator::new(model.clone(), MachineId(0))
        .span(SimDuration::from_days(2))
        .target_utilization(0.6)
        .generate(&mut rng.fork(0));
    let mut b = TraceGenerator::new(model, MachineId(1))
        .span(SimDuration::from_days(2))
        .target_utilization(0.6)
        .generate(&mut rng.fork(1));
    pairing::pair_exact_proportion(
        &mut a,
        &mut b,
        0.15,
        SimDuration::from_mins(2),
        &mut rng.fork(2),
    );
    [a, b]
}

fn config(combo: SchemeCombo) -> CoupledConfig {
    CoupledConfig {
        machines: [
            MachineConfig::eureka(MachineId(0)),
            MachineConfig::eureka(MachineId(1)),
        ],
        cosched: [
            CoschedConfig::paper(combo.of(0)),
            CoschedConfig::paper(combo.of(1)),
        ],
        max_events: 1_000_000,
    }
}

/// Run one traced simulation and return its full record stream.
fn traced_records(combo: SchemeCombo, seed: u64) -> Vec<TraceRecord> {
    let arts = CoupledSimulation::with_observer(
        config(combo),
        workload(seed),
        SinkObserver::new(VecSink::default()),
    )
    .run_traced();
    arts.observer.into_sink().records
}

#[test]
fn same_seed_traces_diff_to_zero_for_every_job() {
    let a = LifecycleSet::from_records(&traced_records(SchemeCombo::HY, 13)).unwrap();
    let b = LifecycleSet::from_records(&traced_records(SchemeCombo::HY, 13)).unwrap();
    let diff = DiffReport::compare(&a, &b);
    assert_eq!((diff.only_in_a, diff.only_in_b), (0, 0));
    assert_eq!(
        diff.compared, diff.unchanged,
        "every job delta must be zero"
    );
    assert!(diff.is_identical(), "{diff}");
    assert_eq!(diff.max_abs_wait_delta, 0);
    assert_eq!(diff.max_abs_start_skew, 0);
}

#[test]
fn different_seeds_do_not_diff_to_zero() {
    // Guard against a differ that vacuously reports "identical".
    let a = LifecycleSet::from_records(&traced_records(SchemeCombo::HY, 13)).unwrap();
    let b = LifecycleSet::from_records(&traced_records(SchemeCombo::HY, 14)).unwrap();
    assert!(!DiffReport::compare(&a, &b).is_identical());
}

#[test]
fn hold_time_attribution_localizes_to_hold_side_machines() {
    // HH: both machines hold, so each may accumulate hold time. YY: neither
    // ever holds, so hold-time attribution must be exactly zero everywhere.
    let hh = LifecycleSet::from_records(&traced_records(SchemeCombo::HH, 13)).unwrap();
    let yy = LifecycleSet::from_records(&traced_records(SchemeCombo::YY, 13)).unwrap();
    let hh_rep = AttributionReport::from_lifecycles(&hh);
    let yy_rep = AttributionReport::from_lifecycles(&yy);

    assert_eq!(hh_rep.scheme_label(), "HH");
    assert_eq!(yy_rep.scheme_label(), "YY");
    let hh_hold: u64 = hh_rep.machines.iter().map(|m| m.hold_secs).sum();
    assert!(hh_hold > 0, "HH run must accumulate hold time");
    for m in &yy_rep.machines {
        assert_eq!(m.scheme, SchemeGuess::Yield, "machine {}", m.machine);
        assert_eq!(
            m.hold_secs, 0,
            "yield-side machine {} must attribute zero hold time",
            m.machine
        );
        assert!(m.yields > 0, "machine {}", m.machine);
    }

    // Mixed combo: hold time only on the hold side.
    let hy = LifecycleSet::from_records(&traced_records(SchemeCombo::HY, 13)).unwrap();
    let hy_rep = AttributionReport::from_lifecycles(&hy);
    assert_eq!(hy_rep.scheme_label(), "HY");
    assert_eq!(hy_rep.machine(1).unwrap().hold_secs, 0);
}

#[test]
fn golden_fixture_round_trips_byte_identically() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/hy_seed13.jsonl"
    );
    let text = std::fs::read_to_string(path).expect("committed golden fixture");
    let records = read_trace_str(&text).expect("fixture parses cleanly");
    assert!(!records.is_empty());

    // Reconstruction must accept the committed stream without complaint…
    let set = LifecycleSet::from_records(&records).expect("fixture is a consistent lifecycle");
    assert!(set.jobs.values().any(|j| j.paired));
    assert!(set.jobs.values().all(|j| j.start.is_some()));

    // …and re-serialization must reproduce the file byte for byte.
    assert_eq!(
        write_trace_string(&records),
        text,
        "reader + writer must round-trip the golden trace exactly"
    );
}

#[test]
fn golden_fixture_matches_regenerated_trace() {
    // The fixture was produced by the committed generator at a fixed seed;
    // regenerating must reproduce it, pinning both workload determinism and
    // the on-disk trace schema. Regenerate with `cargo run --example
    // regen_fixture` (or see tests/fixtures/README.md) after intentional
    // schema changes.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/hy_seed13.jsonl"
    );
    let text = std::fs::read_to_string(path).expect("committed golden fixture");
    let regenerated = write_trace_string(&fixture_records());
    assert_eq!(
        regenerated, text,
        "regenerated trace diverged from the committed golden fixture"
    );
}

/// The exact run that produced `tests/fixtures/hy_seed13.jsonl`: a short
/// HY simulation over a half-day seed-13 workload.
fn fixture_records() -> Vec<TraceRecord> {
    let rng = SimRng::seed_from_u64(13);
    let model = MachineModel::eureka();
    let mut a = TraceGenerator::new(model.clone(), MachineId(0))
        .span(SimDuration::from_hours(12))
        .target_utilization(0.4)
        .generate(&mut rng.fork(0));
    let mut b = TraceGenerator::new(model, MachineId(1))
        .span(SimDuration::from_hours(12))
        .target_utilization(0.4)
        .generate(&mut rng.fork(1));
    pairing::pair_exact_proportion(
        &mut a,
        &mut b,
        0.25,
        SimDuration::from_mins(2),
        &mut rng.fork(2),
    );
    let arts = CoupledSimulation::with_observer(
        config(SchemeCombo::HY),
        [a, b],
        SinkObserver::new(VecSink::default()),
    )
    .run_traced();
    arts.observer.into_sink().records
}
