//! Tier-1 determinism invariant of the parallel campaign runner: a
//! campaign fanned out over N workers produces results **byte-identical**
//! to the serial sweep — same `CaseResult`s, same serialized JSON. Each
//! cell owns its RNG seed and simulation state, and the campaign folds
//! outcomes in submission order, so this must stay exactly true; any
//! divergence means shared state or a float-accumulation-order change
//! leaked in.

use cosched_bench::campaign::{parallel_load_sweep, parallel_prop_sweep};
use cosched_bench::harness::{load_sweep, prop_sweep, Scale, SweepPoint};

fn tiny() -> Scale {
    Scale { days: 2, seeds: 2 }
}

fn to_json(points: &[SweepPoint]) -> String {
    serde_json::to_string(&points).expect("sweep points serialize")
}

#[test]
fn parallel_load_sweep_is_byte_identical_to_serial() {
    let scale = tiny();
    let serial = load_sweep(scale);
    let one = parallel_load_sweep(scale, 1);
    let four = parallel_load_sweep(scale, 4);
    // Structural equality…
    assert_eq!(
        serial.points, one.points,
        "1-thread campaign == serial loop"
    );
    assert_eq!(
        serial.points, four.points,
        "4-thread campaign == serial loop"
    );
    // …and byte identity of the serialized artifact (what lands in
    // report files): equality of f64s implies equal formatting, but pin
    // the bytes too so the invariant survives representation changes.
    let reference = to_json(&serial.points);
    assert_eq!(reference, to_json(&one.points));
    assert_eq!(reference, to_json(&four.points));
}

#[test]
fn parallel_prop_sweep_is_byte_identical_to_serial() {
    let scale = tiny();
    let serial = prop_sweep(scale);
    let four = parallel_prop_sweep(scale, 4);
    assert_eq!(serial.points, four.points);
    assert_eq!(to_json(&serial.points), to_json(&four.points));
}
