//! Determinism guarantees: identical inputs produce byte-identical outputs,
//! the foundation of the harness's seed-paired (common-random-numbers)
//! comparisons between baseline and coscheduled runs.

use coupled_cosched::cosched::{CoschedConfig, CoupledConfig, CoupledSimulation, SchemeCombo};
use coupled_cosched::prelude::*;
use coupled_cosched::sim::{SimDuration, SimRng};
use coupled_cosched::workload::{pairing, MachineModel, TraceGenerator};

fn workload(seed: u64) -> [Trace; 2] {
    let rng = SimRng::seed_from_u64(seed);
    let model = MachineModel::eureka();
    let mut a = TraceGenerator::new(model.clone(), MachineId(0))
        .span(SimDuration::from_days(2))
        .target_utilization(0.6)
        .generate(&mut rng.fork(0));
    let mut b = TraceGenerator::new(model, MachineId(1))
        .span(SimDuration::from_days(2))
        .target_utilization(0.6)
        .generate(&mut rng.fork(1));
    pairing::pair_exact_proportion(
        &mut a,
        &mut b,
        0.15,
        SimDuration::from_mins(2),
        &mut rng.fork(2),
    );
    [a, b]
}

fn config(combo: SchemeCombo) -> CoupledConfig {
    CoupledConfig {
        machines: [
            MachineConfig::eureka(MachineId(0)),
            MachineConfig::eureka(MachineId(1)),
        ],
        cosched: [
            CoschedConfig::paper(combo.of(0)),
            CoschedConfig::paper(combo.of(1)),
        ],
        max_events: 1_000_000,
    }
}

#[test]
fn trace_generation_is_reproducible() {
    assert_eq!(workload(11), workload(11));
    assert_ne!(workload(11), workload(12));
}

#[test]
fn simulation_reports_are_identical_across_runs() {
    for combo in SchemeCombo::ALL {
        let r1 = CoupledSimulation::new(config(combo), workload(13)).run();
        let r2 = CoupledSimulation::new(config(combo), workload(13)).run();
        assert_eq!(r1.records, r2.records, "{}", combo.label());
        assert_eq!(r1.events, r2.events, "{}", combo.label());
        assert_eq!(r1.pair_offsets, r2.pair_offsets, "{}", combo.label());
        assert_eq!(r1.forced_releases, r2.forced_releases, "{}", combo.label());
        assert_eq!(r1.horizon, r2.horizon, "{}", combo.label());
    }
}

#[test]
fn traces_are_byte_identical_across_runs() {
    // The observability tentpole's invariant, end to end: two same-seed runs
    // with a JSONL sink write byte-identical trace streams, and the report
    // matches an untraced (no-op observer) run exactly.
    let traced = || {
        let sink = JsonlSink::new(Vec::new());
        let arts = CoupledSimulation::with_observer(
            config(SchemeCombo::HY),
            workload(13),
            SinkObserver::new(sink),
        )
        .run_traced();
        let bytes = arts.observer.into_sink().into_inner();
        (arts.report, bytes)
    };
    let (r1, bytes1) = traced();
    let (r2, bytes2) = traced();
    assert!(!bytes1.is_empty());
    assert_eq!(
        bytes1, bytes2,
        "same seed must write byte-identical JSONL traces"
    );

    let untraced = CoupledSimulation::new(config(SchemeCombo::HY), workload(13)).run();
    assert_eq!(r1.records, untraced.records);
    assert_eq!(r1.stats, untraced.stats);
    assert_eq!(r1.sched_stats, untraced.sched_stats);
    assert_eq!(r1.metrics, untraced.metrics);
    assert_eq!(r2.events, untraced.events);

    // Every line is a self-describing JSON record with nondecreasing time.
    let text = String::from_utf8(bytes1).unwrap();
    let mut last = 0u64;
    for line in text.lines() {
        let rec: serde_json::Value = serde_json::from_str(line).unwrap();
        let t = rec["time"].as_u64().unwrap();
        assert!(t >= last, "trace times must be nondecreasing");
        last = t;
    }
}

#[test]
fn metrics_snapshots_are_identical_across_runs() {
    for combo in SchemeCombo::ALL {
        let r1 = CoupledSimulation::new(config(combo), workload(17)).run();
        let r2 = CoupledSimulation::new(config(combo), workload(17)).run();
        assert_eq!(r1.metrics, r2.metrics, "{}", combo.label());
        assert_eq!(r1.stats, r2.stats, "{}", combo.label());
        assert_eq!(
            r1.queue_high_water,
            r2.queue_high_water,
            "{}",
            combo.label()
        );
    }
}

#[test]
fn seeds_change_outcomes() {
    let r1 = CoupledSimulation::new(config(SchemeCombo::HY), workload(14)).run();
    let r2 = CoupledSimulation::new(config(SchemeCombo::HY), workload(15)).run();
    assert_ne!(r1.records, r2.records);
}

#[test]
fn baseline_is_independent_of_scheme_configuration() {
    // With coscheduling disabled, the configured scheme must not matter.
    let mut cfg_h = config(SchemeCombo::HH);
    cfg_h.cosched = [CoschedConfig::disabled(), CoschedConfig::disabled()];
    let mut cfg_y = config(SchemeCombo::YY);
    cfg_y.cosched = [CoschedConfig::disabled(), CoschedConfig::disabled()];
    let r1 = CoupledSimulation::new(cfg_h, workload(16)).run();
    let r2 = CoupledSimulation::new(cfg_y, workload(16)).run();
    assert_eq!(r1.records, r2.records);
}

#[test]
fn rng_forks_are_stream_independent() {
    // Consuming one substream must not change another — the property that
    // lets the harness add consumers without perturbing existing draws.
    let root = SimRng::seed_from_u64(99);
    let mut probe1 = root.fork(5);
    let first: Vec<u64> = (0..8)
        .map(|_| rand::RngCore::next_u64(&mut probe1))
        .collect();
    // Interleave heavy use of other forks.
    for s in 0..64 {
        let mut other = root.fork(s + 100);
        for _ in 0..100 {
            rand::RngCore::next_u64(&mut other);
        }
    }
    let mut probe2 = root.fork(5);
    let second: Vec<u64> = (0..8)
        .map(|_| rand::RngCore::next_u64(&mut probe2))
        .collect();
    assert_eq!(first, second);
}
