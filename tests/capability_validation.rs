//! §V-B capability validation as an integration test: for every scheme
//! combination under varied loads and pair proportions, all paired jobs
//! start simultaneously, nothing deadlocks with the release enhancement on,
//! and hold-hold deadlocks with it off.

use coupled_cosched::cosched::{
    CoschedConfig, CoupledConfig, CoupledSimulation, Scheme, SchemeCombo,
};
use coupled_cosched::prelude::*;
use coupled_cosched::sim::{SimDuration, SimRng};
use coupled_cosched::workload::{pairing, MachineModel, TraceGenerator};

fn coupled_traces(seed: u64, util: f64, proportion: f64) -> [Trace; 2] {
    let rng = SimRng::seed_from_u64(seed);
    let mut a = TraceGenerator::new(
        MachineModel::eureka().with_runtime(1_500.0, 1.2),
        MachineId(0),
    )
    .span(SimDuration::from_days(2))
    .target_utilization(util)
    .generate(&mut rng.fork(1));
    let mut b = TraceGenerator::new(
        MachineModel::eureka().with_runtime(1_500.0, 1.2),
        MachineId(1),
    )
    .span(SimDuration::from_days(2))
    .target_utilization(util)
    .generate(&mut rng.fork(2));
    pairing::pair_exact_proportion(
        &mut a,
        &mut b,
        proportion,
        SimDuration::from_mins(2),
        &mut rng.fork(3),
    );
    [a, b]
}

fn config(combo: SchemeCombo) -> CoupledConfig {
    let mut cfg = CoupledConfig {
        machines: [
            MachineConfig::eureka(MachineId(0)),
            MachineConfig::eureka(MachineId(1)),
        ],
        cosched: [
            CoschedConfig::paper(combo.of(0)),
            CoschedConfig::paper(combo.of(1)),
        ],
        max_events: 2_000_000,
    };
    cfg.machines[0].name = "A".into();
    cfg.machines[1].name = "B".into();
    cfg
}

#[test]
fn all_combos_all_loads_synchronize_without_deadlock() {
    for combo in SchemeCombo::ALL {
        for (seed, util) in [(1, 0.25), (2, 0.50), (3, 0.75)] {
            let traces = coupled_traces(seed, util, 0.10);
            let pairs = traces[0].paired_count();
            assert!(pairs > 3, "workload must contain pairs (got {pairs})");
            let report = CoupledSimulation::new(config(combo), traces).run();
            assert!(
                !report.deadlocked,
                "{} deadlocked at util {util}",
                combo.label()
            );
            assert!(!report.aborted, "{} aborted at util {util}", combo.label());
            assert_eq!(
                report.unfinished,
                [0, 0],
                "{} at util {util}",
                combo.label()
            );
            assert_eq!(
                report.pair_offsets.len(),
                pairs,
                "{} at util {util}: every pair must complete",
                combo.label()
            );
            assert!(
                report.all_pairs_synchronized(),
                "{} at util {util}: max offset {}",
                combo.label(),
                report.max_pair_offset()
            );
        }
    }
}

#[test]
fn all_combos_all_proportions_synchronize() {
    for combo in SchemeCombo::ALL {
        for (seed, prop) in [(4, 0.05), (5, 0.20), (6, 0.33)] {
            let report =
                CoupledSimulation::new(config(combo), coupled_traces(seed, 0.5, prop)).run();
            assert!(!report.deadlocked, "{} at prop {prop}", combo.label());
            assert!(
                report.all_pairs_synchronized(),
                "{} at prop {prop}: max offset {}",
                combo.label(),
                report.max_pair_offset()
            );
        }
    }
}

#[test]
fn hold_hold_deadlocks_without_breaker_and_not_with_it() {
    // Dense pairing at medium load makes the circular wait all but certain.
    let mut without = config(SchemeCombo::HH);
    without.cosched[0].release_period = None;
    without.cosched[1].release_period = None;
    let report = CoupledSimulation::new(without, coupled_traces(7, 0.6, 0.5)).run();
    assert!(
        report.deadlocked,
        "expected hold-hold to deadlock without the release enhancement"
    );
    assert!(report.unfinished[0] + report.unfinished[1] > 0);

    let report = CoupledSimulation::new(config(SchemeCombo::HH), coupled_traces(7, 0.6, 0.5)).run();
    assert!(
        !report.deadlocked,
        "release enhancement must break the deadlock"
    );
    assert_eq!(report.unfinished, [0, 0]);
    assert!(report.forced_releases > 0);
    assert!(report.all_pairs_synchronized());
}

#[test]
fn disabling_coscheduling_gives_plain_scheduling() {
    let mut cfg = config(SchemeCombo::YY);
    cfg.cosched = [CoschedConfig::disabled(), CoschedConfig::disabled()];
    let report = CoupledSimulation::new(cfg, coupled_traces(8, 0.5, 0.2)).run();
    assert!(!report.deadlocked);
    assert_eq!(report.summaries[0].total_holds, 0);
    assert_eq!(report.summaries[0].total_yields, 0);
    assert_eq!(report.summaries[0].lost_node_hours, 0.0);
    // Pairs exist in the workload but are not synchronized by anything.
    assert!(!report.pair_offsets.is_empty());
}

#[test]
fn enhancements_preserve_the_sync_guarantee() {
    // Held-fraction cap and yield cap change decisions, never correctness.
    let mut cfg = config(SchemeCombo::HH);
    cfg.cosched[0] = CoschedConfig::paper(Scheme::Hold).with_max_held_fraction(Some(0.2));
    cfg.cosched[1] = CoschedConfig::paper(Scheme::Yield).with_max_yields(Some(5));
    let report = CoupledSimulation::new(cfg, coupled_traces(9, 0.5, 0.25)).run();
    assert!(!report.deadlocked);
    assert!(
        report.all_pairs_synchronized(),
        "max offset {}",
        report.max_pair_offset()
    );
}

#[test]
fn intrepid_eureka_scale_capability() {
    // The real machine shapes (buddy-partitioned 40k machine + 100-node
    // cluster) at small trace scale.
    let rng = SimRng::seed_from_u64(10);
    let mut intrepid = TraceGenerator::new(MachineModel::intrepid(), MachineId(0))
        .span(SimDuration::from_days(2))
        .target_utilization(0.55)
        .generate(&mut rng.fork(0));
    let mut eureka = TraceGenerator::new(MachineModel::eureka(), MachineId(1))
        .span(SimDuration::from_days(2))
        .target_utilization(0.5)
        .generate(&mut rng.fork(1));
    pairing::pair_by_window(&mut intrepid, &mut eureka, SimDuration::from_mins(2));
    for combo in SchemeCombo::ALL {
        let report = CoupledSimulation::new(
            CoupledConfig::anl(combo),
            [intrepid.clone(), eureka.clone()],
        )
        .run();
        assert!(!report.deadlocked, "{}", combo.label());
        assert!(
            report.all_pairs_synchronized(),
            "{}: max offset {}",
            combo.label(),
            report.max_pair_offset()
        );
    }
}
