//! End-to-end live deployment test: two wall-clock domains coscheduling
//! over real TCP sockets — the protocol, transports, endpoint service, and
//! the shared `run_job` algorithm all exercised outside the simulator.

use coupled_cosched::cosched::config::CoschedConfig;
use coupled_cosched::cosched::live::LiveDomain;
use coupled_cosched::cosched::{MateRegistry, Scheme};
use coupled_cosched::prelude::*;
use coupled_cosched::proto::tcp::{self, TcpTransport};
use coupled_cosched::proto::{Request, Response, Transport};
use coupled_cosched::sched::Machine;
use coupled_cosched::sim::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn job(machine: usize, id: u64, submit_secs: u64, size: u64, runtime_secs: u64) -> Job {
    Job::new(
        JobId(id),
        MachineId(machine),
        SimTime::from_secs(submit_secs),
        size,
        SimDuration::from_secs(runtime_secs),
        SimDuration::from_secs(runtime_secs * 2),
    )
}

struct Rig {
    clock: Arc<AtomicU64>,
    a: LiveDomain,
    b: LiveDomain,
    a_to_b: TcpTransport,
    b_to_a: TcpTransport,
    srv_a: tcp::ServerHandle,
    srv_b: tcp::ServerHandle,
}

fn rig(scheme_a: Scheme, scheme_b: Scheme, registry: MateRegistry) -> Rig {
    let clock = Arc::new(AtomicU64::new(0));
    let now = |clock: &Arc<AtomicU64>| {
        let c = Arc::clone(clock);
        move || SimTime::from_secs(c.load(Ordering::SeqCst))
    };
    let a = LiveDomain::new(
        Machine::new(MachineConfig::flat("A", MachineId(0), 50)),
        CoschedConfig::paper(scheme_a),
        registry.clone(),
        MachineId(1),
    );
    let b = LiveDomain::new(
        Machine::new(MachineConfig::flat("B", MachineId(1), 50)),
        CoschedConfig::paper(scheme_b),
        registry,
        MachineId(0),
    );
    let srv_a = tcp::serve("127.0.0.1:0".parse().unwrap(), a.service(now(&clock))).unwrap();
    let srv_b = tcp::serve("127.0.0.1:0".parse().unwrap(), b.service(now(&clock))).unwrap();
    let a_to_b = TcpTransport::connect(srv_b.addr(), Duration::from_secs(2)).unwrap();
    let b_to_a = TcpTransport::connect(srv_a.addr(), Duration::from_secs(2)).unwrap();
    Rig {
        clock,
        a,
        b,
        a_to_b,
        b_to_a,
        srv_a,
        srv_b,
    }
}

fn one_pair_registry() -> MateRegistry {
    let mut reg = MateRegistry::new();
    reg.insert_pair((MachineId(0), JobId(1)), (MachineId(1), JobId(1)));
    reg
}

#[test]
fn hold_yield_pair_synchronizes_over_tcp() {
    let mut r = rig(Scheme::Hold, Scheme::Yield, one_pair_registry());
    let t0 = SimTime::ZERO;

    // Pair job arrives on A first; B is fully busy with a filler.
    r.b.submit(job(1, 9, 0, 50, 120), t0);
    r.b.pump(t0, &mut r.b_to_a);
    r.a.submit(job(0, 1, 0, 20, 60), t0);
    r.a.pump(t0, &mut r.a_to_b);
    assert_eq!(
        r.a.held(),
        vec![JobId(1)],
        "A holds while the mate is unsubmitted"
    );

    // Mate arrives on B but cannot start (filler).
    r.clock.store(30, Ordering::SeqCst);
    let t30 = SimTime::from_secs(30);
    r.b.submit(job(1, 1, 30, 20, 60), t30);
    r.b.pump(t30, &mut r.b_to_a);
    assert_eq!(r.a.held(), vec![JobId(1)], "still holding: B had no room");

    // Filler completes; B pumps; the pair starts together.
    r.clock.store(120, Ordering::SeqCst);
    let t120 = SimTime::from_secs(120);
    assert_eq!(r.b.complete_due(t120), 1);
    r.b.pump(t120, &mut r.b_to_a);
    assert!(
        r.a.held().is_empty(),
        "hold resolved by the mate's StartJob"
    );

    r.clock.store(1_000, Ordering::SeqCst);
    let t1000 = SimTime::from_secs(1_000);
    r.a.complete_due(t1000);
    r.b.complete_due(t1000);
    assert!(r.a.drained() && r.b.drained());

    let sa =
        r.a.records()
            .iter()
            .find(|x| x.id == JobId(1))
            .unwrap()
            .start;
    let sb =
        r.b.records()
            .iter()
            .find(|x| x.id == JobId(1))
            .unwrap()
            .start;
    assert_eq!(sa, sb, "pair must start simultaneously over TCP");
    assert_eq!(sa, t120);

    r.srv_a.shutdown();
    r.srv_b.shutdown();
}

#[test]
fn yield_yield_pair_synchronizes_over_tcp() {
    let mut r = rig(Scheme::Yield, Scheme::Yield, one_pair_registry());
    let t0 = SimTime::ZERO;
    r.b.submit(job(1, 9, 0, 50, 100), t0);
    r.b.pump(t0, &mut r.b_to_a);
    r.a.submit(job(0, 1, 0, 20, 60), t0);
    r.a.pump(t0, &mut r.a_to_b);
    assert!(r.a.held().is_empty(), "yield scheme never holds");

    r.clock.store(50, Ordering::SeqCst);
    let t50 = SimTime::from_secs(50);
    r.b.submit(job(1, 1, 50, 20, 60), t50);
    r.b.pump(t50, &mut r.b_to_a); // mate ready? A's job queued; try_start_mate(A) starts it
    r.a.pump(t50, &mut r.a_to_b);

    // B's pair job couldn't start at t50 (filler holds 50/50 nodes)… B's
    // pump at t50 yielded. At t100 the filler ends.
    r.clock.store(100, Ordering::SeqCst);
    let t100 = SimTime::from_secs(100);
    r.b.complete_due(t100);
    r.b.pump(t100, &mut r.b_to_a);

    r.clock.store(500, Ordering::SeqCst);
    let t500 = SimTime::from_secs(500);
    r.a.complete_due(t500);
    r.b.complete_due(t500);
    assert!(r.a.drained() && r.b.drained());
    let sa =
        r.a.records()
            .iter()
            .find(|x| x.id == JobId(1))
            .unwrap()
            .start;
    let sb =
        r.b.records()
            .iter()
            .find(|x| x.id == JobId(1))
            .unwrap()
            .start;
    assert_eq!(sa, sb);

    r.srv_a.shutdown();
    r.srv_b.shutdown();
}

#[test]
fn protocol_queries_reflect_domain_state() {
    let r = rig(Scheme::Hold, Scheme::Hold, one_pair_registry());
    let mut probe = TcpTransport::connect(r.srv_a.addr(), Duration::from_secs(2)).unwrap();

    // Unknown job: unsubmitted.
    let resp = probe
        .call(&Request::GetMateStatus { job: JobId(1) })
        .unwrap();
    assert_eq!(
        resp,
        Response::MateStatus(coupled_cosched::proto::MateStatus::Unsubmitted)
    );

    // Mate lookup through the registry.
    let resp = probe
        .call(&Request::GetMateJob { for_job: JobId(1) })
        .unwrap();
    match resp {
        Response::MateJob(Some(m)) => {
            assert_eq!(m.machine, MachineId(0));
            assert_eq!(m.job, JobId(1));
        }
        other => panic!("unexpected {other:?}"),
    }

    // Submit and query again: queuing… after a pump with no transport
    // trouble it becomes held (scheme hold, mate unsubmitted on B).
    r.a.submit(job(0, 1, 0, 20, 60), SimTime::ZERO);
    let resp = probe
        .call(&Request::GetMateStatus { job: JobId(1) })
        .unwrap();
    assert_eq!(
        resp,
        Response::MateStatus(coupled_cosched::proto::MateStatus::Queuing)
    );

    // Ping for liveness.
    assert_eq!(probe.call(&Request::Ping).unwrap(), Response::Pong);

    r.srv_a.shutdown();
    r.srv_b.shutdown();
}

#[test]
fn dead_peer_over_tcp_triggers_fault_tolerance() {
    let mut r = rig(Scheme::Hold, Scheme::Hold, one_pair_registry());
    // Kill B's server before A pumps: A's calls fail ⇒ its paired job
    // starts normally instead of holding.
    r.srv_b.shutdown();
    r.a.submit(job(0, 1, 0, 20, 60), SimTime::ZERO);
    r.a.pump(SimTime::ZERO, &mut r.a_to_b);
    assert!(r.a.held().is_empty(), "no holding against a dead peer");
    r.clock.store(60, Ordering::SeqCst);
    assert_eq!(r.a.complete_due(SimTime::from_secs(60)), 1);
    assert!(r.a.drained());
    r.srv_a.shutdown();
}
