//! Property-based tests (proptest) on the core data structures and on the
//! coscheduling invariants themselves.

use coupled_cosched::cosched::{CoschedConfig, CoupledConfig, CoupledSimulation, SchemeCombo};
use coupled_cosched::prelude::*;
use coupled_cosched::sched::alloc::{BuddyAllocator, FlatAllocator};
use coupled_cosched::sched::NodeAllocator;
use coupled_cosched::sim::{EventQueue, SimDuration, SimRng, SimTime};
use coupled_cosched::workload::pairing;
use proptest::prelude::*;

// ---------------------------------------------------------------- allocators

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(u64),
    Release(usize),
}

fn alloc_ops(max_size: u64) -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (1..=max_size).prop_map(AllocOp::Alloc),
            (0usize..64).prop_map(AllocOp::Release),
        ],
        1..200,
    )
}

fn exercise_allocator(a: &mut dyn NodeAllocator, ops: &[AllocOp]) {
    let capacity = a.capacity();
    let mut live = Vec::new();
    for op in ops {
        match op {
            AllocOp::Alloc(size) => {
                let fits = a.can_fit(*size);
                match a.alloc(*size) {
                    Some(h) => {
                        assert!(fits, "alloc succeeded where can_fit said no");
                        live.push(h);
                    }
                    None => assert!(!fits, "can_fit said yes but alloc failed"),
                }
            }
            AllocOp::Release(i) => {
                if !live.is_empty() {
                    let h = live.remove(i % live.len());
                    a.release(h);
                }
            }
        }
        assert!(a.free_nodes() <= capacity, "free exceeded capacity");
    }
    for h in live {
        a.release(h);
    }
    assert_eq!(
        a.free_nodes(),
        capacity,
        "releases must restore all capacity"
    );
}

proptest! {
    #[test]
    fn flat_allocator_never_leaks_or_double_books(ops in alloc_ops(100)) {
        let mut a = FlatAllocator::new(100);
        exercise_allocator(&mut a, &ops);
    }

    #[test]
    fn buddy_allocator_never_leaks_or_double_books(ops in alloc_ops(4096)) {
        let mut a = BuddyAllocator::new(4096, 512);
        exercise_allocator(&mut a, &ops);
        // Full coalescing: after everything is released the whole machine
        // is one block again.
        prop_assert_eq!(a.largest_fit(), 4096);
    }

    #[test]
    fn buddy_charges_at_least_request(size in 1u64..40_960) {
        let a = BuddyAllocator::new(40_960, 512);
        let charged = a.charged_nodes(size);
        prop_assert!(charged >= size);
        prop_assert_eq!(charged % 512, 0);
        // Charging is the next power-of-two unit count.
        let units = charged / 512;
        prop_assert!(units.is_power_of_two());
        prop_assert!(units / 2 < size.div_ceil(512).max(1));
    }
}

// --------------------------------------------------------------- event queue

proptest! {
    #[test]
    fn event_queue_is_a_stable_total_order(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.time >= lt, "time order violated");
                if ev.time == lt {
                    prop_assert!(ev.event > li, "FIFO tie-break violated");
                }
            }
            last = Some((ev.time, ev.event));
        }
    }

    #[test]
    fn cancelled_events_never_fire(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.push(SimTime::from_secs(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*id);
                cancelled.insert(i);
            }
        }
        let mut seen = 0;
        while let Some(ev) = q.pop() {
            prop_assert!(!cancelled.contains(&ev.event), "cancelled event fired");
            seen += 1;
        }
        prop_assert_eq!(seen, times.len() - cancelled.len());
    }
}

// ------------------------------------------------------------------- pairing

fn arb_trace(machine: usize, n: core::ops::Range<usize>) -> impl Strategy<Value = Trace> {
    (prop::collection::vec((0u64..86_400, 1u64..50, 60u64..7_200), n)).prop_map(move |jobs| {
        Trace::from_jobs(
            MachineId(machine),
            jobs.iter()
                .enumerate()
                .map(|(i, &(submit, size, runtime))| {
                    Job::new(
                        JobId(i as u64),
                        MachineId(machine),
                        SimTime::from_secs(submit),
                        size,
                        SimDuration::from_secs(runtime),
                        SimDuration::from_secs(runtime * 2),
                    )
                })
                .collect(),
        )
    })
}

proptest! {
    #[test]
    fn window_pairing_is_always_valid_and_within_window(
        a in arb_trace(0, 5..60),
        b in arb_trace(1, 5..60),
        window_mins in 1u64..30,
    ) {
        let mut a = a;
        let mut b = b;
        let window = SimDuration::from_mins(window_mins);
        let n = pairing::pair_by_window(&mut a, &mut b, window);
        prop_assert!(pairing::validate_pairing(&a, &b).is_ok());
        prop_assert_eq!(a.paired_count(), n);
        prop_assert_eq!(b.paired_count(), n);
        for j in a.jobs().iter().filter(|j| j.is_paired()) {
            let mate = b.get(j.mate.unwrap().job).unwrap();
            prop_assert!(j.submit.abs_diff(mate.submit) <= window);
        }
    }

    #[test]
    fn exact_proportion_pairing_is_valid_and_exact(
        a in arb_trace(0, 10..80),
        b in arb_trace(1, 10..80),
        prop_pct in 0u32..=100,
        seed in 0u64..1_000,
    ) {
        let mut a = a;
        let mut b = b;
        let proportion = prop_pct as f64 / 100.0;
        let mut rng = SimRng::seed_from_u64(seed);
        let n = pairing::pair_exact_proportion(
            &mut a, &mut b, proportion, SimDuration::from_mins(2), &mut rng,
        );
        prop_assert!(pairing::validate_pairing(&a, &b).is_ok());
        let expect = (proportion * a.len().min(b.len()) as f64).round() as usize;
        prop_assert_eq!(n, expect);
        prop_assert_eq!(a.paired_count(), expect);
    }

    #[test]
    fn interval_scaling_preserves_order_and_first_submit(
        a in arb_trace(0, 3..50),
        factor_pct in 10u64..500,
    ) {
        let mut t = a;
        let first = t.first_submit();
        t.scale_intervals(factor_pct as f64 / 100.0);
        prop_assert_eq!(t.first_submit(), first);
        prop_assert!(t.jobs().windows(2).all(|w| w[0].submit <= w[1].submit));
    }
}

// ------------------------------------------------- coscheduling invariants

fn small_coupled_config(combo: SchemeCombo) -> CoupledConfig {
    CoupledConfig {
        machines: [
            MachineConfig::flat("A", MachineId(0), 50),
            MachineConfig::flat("B", MachineId(1), 50),
        ],
        cosched: [
            CoschedConfig::paper(combo.of(0)),
            CoschedConfig::paper(combo.of(1)),
        ],
        max_events: 500_000,
    }
}

fn arb_combo() -> impl Strategy<Value = SchemeCombo> {
    prop::sample::select(SchemeCombo::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant under arbitrary workloads: every pair starts
    /// simultaneously, utilization stays within [0,1], sync times are
    /// non-negative (by construction of SimDuration), and yield-only
    /// configurations lose no service units.
    #[test]
    fn coscheduling_invariants_hold_for_random_workloads(
        a in arb_trace(0, 4..40),
        b in arb_trace(1, 4..40),
        combo in arb_combo(),
        prop_pct in 0u32..=50,
        seed in 0u64..1_000,
    ) {
        let mut a = a;
        let mut b = b;
        let mut rng = SimRng::seed_from_u64(seed);
        pairing::pair_exact_proportion(
            &mut a, &mut b, prop_pct as f64 / 100.0, SimDuration::from_mins(2), &mut rng,
        );
        let expected_pairs = a.paired_count();
        let report = CoupledSimulation::new(small_coupled_config(combo), [a, b]).run();

        prop_assert!(!report.aborted);
        prop_assert!(!report.deadlocked, "deadlock with breaker on ({})", combo.label());
        prop_assert_eq!(report.unfinished, [0, 0]);
        prop_assert_eq!(report.pair_offsets.len(), expected_pairs);
        prop_assert!(
            report.all_pairs_synchronized(),
            "{}: max offset {}",
            combo.label(),
            report.max_pair_offset()
        );
        for s in &report.summaries {
            prop_assert!((0.0..=1.0).contains(&s.utilization), "utilization {}", s.utilization);
            prop_assert!(s.lost_util_rate >= 0.0 && s.lost_util_rate <= 1.0);
            prop_assert!(s.avg_sync_mins >= 0.0);
        }
        if combo == SchemeCombo::YY {
            prop_assert_eq!(report.summaries[0].lost_node_hours, 0.0);
            prop_assert_eq!(report.summaries[1].lost_node_hours, 0.0);
        }
    }

    /// Job conservation: every submitted job finishes exactly once, with
    /// start ≥ submit and end = start + runtime.
    #[test]
    fn job_conservation_and_timing_sanity(
        a in arb_trace(0, 4..40),
        b in arb_trace(1, 4..40),
        combo in arb_combo(),
    ) {
        let (na, nb) = (a.len(), b.len());
        let jobs_a: std::collections::HashMap<_, _> =
            a.jobs().iter().map(|j| (j.id, j.clone())).collect();
        let report = CoupledSimulation::new(small_coupled_config(combo), [a, b]).run();
        prop_assert_eq!(report.records[0].len(), na);
        prop_assert_eq!(report.records[1].len(), nb);
        for r in &report.records[0] {
            let j = &jobs_a[&r.id];
            prop_assert!(r.start >= j.submit);
            prop_assert_eq!(r.end, r.start + j.runtime);
            prop_assert_eq!(r.size, j.size);
        }
    }
}

// ------------------------------------------------------------ protocol fuzz

proptest! {
    /// The frame decoder must never panic on arbitrary byte streams,
    /// arbitrarily chunked — it either yields messages, waits for more, or
    /// reports a structured error.
    #[test]
    fn frame_decoder_never_panics_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..64,
    ) {
        use coupled_cosched::proto::frame::FrameDecoder;
        let mut dec = FrameDecoder::new();
        for piece in bytes.chunks(chunk) {
            dec.extend(piece);
            // Drain until it wants more bytes or errors; both are fine.
            loop {
                match dec.next::<coupled_cosched::proto::Request>() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(_) => return Ok(()), // poisoned stream: connection would drop
                }
            }
        }
    }

    /// Encoding then decoding any request/response through arbitrary
    /// chunking is the identity.
    #[test]
    fn frame_roundtrip_survives_chunking(job_id in any::<u64>(), chunk in 1usize..16) {
        use coupled_cosched::proto::frame::{encode, FrameDecoder};
        use coupled_cosched::proto::Request;
        let req = Request::GetMateStatus { job: JobId(job_id) };
        let wire = encode(&req);
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for piece in wire.chunks(chunk) {
            dec.extend(piece);
            if let Some(msg) = dec.next::<Request>().unwrap() {
                got = Some(msg);
            }
        }
        prop_assert_eq!(got, Some(req));
    }

    /// Reservation capacity profiles never overbook and account exactly.
    #[test]
    fn capacity_profile_accounting(
        bookings in prop::collection::vec((0u64..5_000, 1u64..2_000, 1u64..100), 1..60),
    ) {
        use coupled_cosched::resv::CapacityProfile;
        let mut p = CapacityProfile::new(100);
        let mut expected = 0u64;
        for (after, dur, nodes) in bookings {
            let start = p
                .earliest_fit(SimTime::from_secs(after), SimDuration::from_secs(dur), nodes)
                .expect("nodes ≤ capacity always placeable");
            prop_assert!(p.fits(start, SimDuration::from_secs(dur), nodes));
            p.reserve(start, SimDuration::from_secs(dur), nodes);
            expected += nodes * dur;
            prop_assert!(start >= SimTime::from_secs(after));
        }
        prop_assert_eq!(p.committed_node_seconds(), expected);
    }
}
