//! Span-layer acceptance tests: the causal span records preserve the PR-1
//! determinism invariant (same seed ⇒ byte-identical trace, traced report
//! == untraced report), every completed mate pair reconstructs a gap-free
//! critical path whose timed segments sum to the pair's total wait, and
//! the Perfetto export carries a cross-machine flow pair for every RPC
//! span that reached its remote handler.

use coupled_cosched::cosched::{CoschedConfig, CoupledConfig, CoupledSimulation, SchemeCombo};
use coupled_cosched::obs::trace::SpanKind;
use coupled_cosched::obs::{read_trace_str, write_trace_string, TraceRecord};
use coupled_cosched::prelude::*;
use coupled_cosched::sim::{SimDuration, SimRng};
use coupled_cosched::trace::{CriticalPathReport, SegmentClass, SpanTree};
use coupled_cosched::workload::{pairing, MachineModel, TraceGenerator};

/// The committed golden fixture's record stream.
fn fixture_records() -> Vec<TraceRecord> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/hy_seed13.jsonl"
    );
    let text = std::fs::read_to_string(path).expect("committed golden fixture");
    read_trace_str(&text).expect("fixture parses cleanly")
}

fn config(combo: SchemeCombo) -> CoupledConfig {
    CoupledConfig {
        machines: [
            MachineConfig::eureka(MachineId(0)),
            MachineConfig::eureka(MachineId(1)),
        ],
        cosched: [
            CoschedConfig::paper(combo.of(0)),
            CoschedConfig::paper(combo.of(1)),
        ],
        max_events: 1_000_000,
    }
}

fn workload(seed: u64) -> [Trace; 2] {
    let rng = SimRng::seed_from_u64(seed);
    let model = MachineModel::eureka();
    let mut a = TraceGenerator::new(model.clone(), MachineId(0))
        .span(SimDuration::from_days(2))
        .target_utilization(0.5)
        .generate(&mut rng.fork(0));
    let mut b = TraceGenerator::new(model, MachineId(1))
        .span(SimDuration::from_days(2))
        .target_utilization(0.5)
        .generate(&mut rng.fork(1));
    pairing::pair_exact_proportion(
        &mut a,
        &mut b,
        0.2,
        SimDuration::from_mins(2),
        &mut rng.fork(2),
    );
    [a, b]
}

#[test]
fn traced_report_with_spans_equals_untraced_report() {
    // Span emission is gated on an active observer; the simulation outcome
    // must not depend on whether anyone is watching.
    let untraced = CoupledSimulation::new(config(SchemeCombo::HY), workload(13)).run();
    let arts = CoupledSimulation::with_observer(
        config(SchemeCombo::HY),
        workload(13),
        SinkObserver::new(VecSink::default()),
    )
    .run_traced();
    assert_eq!(arts.report.records, untraced.records);
    assert_eq!(arts.report.stats, untraced.stats);
    assert_eq!(arts.report.sched_stats, untraced.sched_stats);
    assert_eq!(arts.report.metrics, untraced.metrics);
    assert_eq!(arts.report.events, untraced.events);
    assert_eq!(arts.report.pair_offsets, untraced.pair_offsets);
    // And the trace did actually carry span records.
    let tree = SpanTree::from_records(&arts.observer.sink().records).unwrap();
    assert!(!tree.is_empty(), "traced run must emit spans");
}

#[test]
fn fixture_span_forest_is_well_formed() {
    let records = fixture_records();
    let tree = SpanTree::from_records(&records).expect("fixture spans are well-nested");
    assert!(tree.pair_roots().count() > 0, "fixture has mate pairs");
    // Every RPC span parents under a pair root or sweep, and every
    // RpcHandler parents under an Rpc on the *other* machine.
    for node in tree.spans() {
        if let SpanKind::RpcHandler(_) = node.kind {
            let parent = tree.get(node.parent).expect("handler has a parent");
            assert!(matches!(parent.kind, SpanKind::Rpc(_)), "{node:?}");
            assert_ne!(parent.machine, node.machine, "RPC edges cross machines");
        }
    }
}

#[test]
fn every_completed_fixture_pair_has_a_gap_free_critical_path() {
    let records = fixture_records();
    let report = CriticalPathReport::from_records(&records).unwrap();
    assert!(
        !report.pairs.is_empty(),
        "fixture must contain completed pairs"
    );
    for path in &report.pairs {
        // Gap-free chain from first submit to synchronized start…
        path.check().unwrap_or_else(|e| {
            panic!("pair ({}, {}): {e}", path.job0, path.job1);
        });
        // …whose timed segment durations sum to the pair's total wait.
        assert_eq!(
            path.timed_secs(),
            path.total_wait(),
            "pair ({}, {})",
            path.job0,
            path.job1
        );
    }
    // The HY fixture's aggregates carry the HY combo with nonzero wait.
    let hy = report.combos.iter().find(|c| c.combo == "HY");
    let total: u64 = report.combos.iter().map(|c| c.total_wait).sum();
    assert!(
        hy.is_some() || total > 0,
        "fixture aggregates must be non-trivial: {report}"
    );
    // Every pair that waited at all attributes its wait somewhere.
    for agg in &report.combos {
        let classed: u64 = agg.class_secs.iter().sum();
        assert_eq!(classed, agg.total_wait, "combo {}", agg.combo);
    }
}

#[test]
fn fixture_critical_paths_thread_rpc_links() {
    let records = fixture_records();
    let report = CriticalPathReport::from_records(&records).unwrap();
    let rpc_links: usize = report
        .pairs
        .iter()
        .map(|p| p.link_count(SegmentClass::Rpc))
        .sum();
    assert!(
        rpc_links > 0,
        "rendezvous requires RPCs, so paths must carry rpc links"
    );
}

#[test]
fn perfetto_export_of_fixture_carries_flow_for_every_handled_rpc() {
    let records = fixture_records();
    let tree = SpanTree::from_records(&records).unwrap();
    let handled_rpcs = tree
        .spans()
        .filter(|n| {
            matches!(n.kind, SpanKind::Rpc(_))
                && n.children
                    .iter()
                    .filter_map(|&c| tree.get(c))
                    .any(|c| matches!(c.kind, SpanKind::RpcHandler(_)))
        })
        .count();
    assert!(handled_rpcs > 0);

    let json = coupled_cosched::trace::render_perfetto(&records).unwrap();
    let v: serde_json::Value = serde_json::from_str(&json).expect("export is valid JSON");
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    let count = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(serde_json::Value::as_str) == Some(ph))
            .count()
    };
    assert_eq!(count("s"), handled_rpcs, "one flow start per handled RPC");
    assert_eq!(count("f"), handled_rpcs, "one flow finish per handled RPC");
    // Deterministic: a second render is byte-identical.
    assert_eq!(
        coupled_cosched::trace::render_perfetto(&records).unwrap(),
        json
    );
}

#[test]
fn every_event_variant_round_trips_through_the_reader() {
    // Satellite (c): writer + reader cover the full TraceEvent surface,
    // including the span variants, at assorted times and machines.
    let samples = coupled_cosched::obs::TraceEvent::samples();
    let records: Vec<TraceRecord> = samples
        .into_iter()
        .enumerate()
        .map(|(i, event)| TraceRecord {
            time: i as u64 * 7,
            machine: i % 3,
            event,
        })
        .collect();
    let text = write_trace_string(&records);
    let back = read_trace_str(&text).expect("every variant parses back");
    assert_eq!(back, records);
    // And a second serialization is byte-stable.
    assert_eq!(write_trace_string(&back), text);
}
