//! Integration tests for the §VI future-work extensions (N-way
//! coscheduling, temporal constraints) and the §III co-reservation
//! comparator, exercised through the facade crate at randomized scale.

use coupled_cosched::cosched::config::CoschedConfig;
use coupled_cosched::cosched::nway::{GroupId, GroupRegistry, NwayConfig, NwaySimulation};
use coupled_cosched::cosched::temporal::{
    ConstraintInstance, TemporalConstraint, TemporalSimulation,
};
use coupled_cosched::cosched::Scheme;
use coupled_cosched::prelude::*;
use coupled_cosched::resv::ReservationSimulation;
use coupled_cosched::sim::{SimDuration, SimRng, SimTime};
use coupled_cosched::workload::{pairing, MachineModel, TraceGenerator};

fn job(machine: usize, id: u64, submit: u64, size: u64, runtime: u64) -> Job {
    Job::new(
        JobId(id),
        MachineId(machine),
        SimTime::from_secs(submit),
        size,
        SimDuration::from_secs(runtime),
        SimDuration::from_secs(runtime * 2),
    )
}

#[test]
fn nway_randomized_groups_synchronize_across_four_machines() {
    let n = 4;
    let rng = SimRng::seed_from_u64(77);
    // Background workload per machine plus 20 four-way groups.
    let mut traces: Vec<Trace> = (0..n)
        .map(|m| {
            TraceGenerator::new(
                MachineModel::eureka().with_runtime(1_000.0, 1.0),
                MachineId(m),
            )
            .span(SimDuration::from_days(1))
            .target_utilization(0.4)
            .generate(&mut rng.fork(m as u64))
        })
        .collect();
    let mut registry = GroupRegistry::new();
    for g in 0..20u64 {
        let submit = 1_000 + g * 3_000;
        let members: Vec<(MachineId, JobId)> = (0..n)
            .map(|m| {
                let id = JobId(100_000 + g);
                traces[m].push(job(m, id.0, submit + (m as u64) * 37, 5 + (g % 10), 900));
                (MachineId(m), id)
            })
            .collect();
        for t in &mut traces {
            t.resort();
        }
        registry.insert_group(GroupId(g), members);
    }
    let config = NwayConfig {
        machines: (0..n)
            .map(|m| {
                let mut c = MachineConfig::eureka(MachineId(m));
                c.name = format!("M{m}");
                c
            })
            .collect(),
        cosched: (0..n)
            .map(|m| {
                CoschedConfig::paper(if m % 2 == 0 {
                    Scheme::Hold
                } else {
                    Scheme::Yield
                })
            })
            .collect(),
        max_events: 2_000_000,
    };
    let report = NwaySimulation::new(config, traces, registry).run();
    assert!(!report.deadlocked);
    assert!(!report.aborted);
    assert_eq!(report.group_spreads.len(), 20, "every group must complete");
    assert!(
        report.all_groups_synchronized(),
        "spreads {:?}",
        report.group_spreads
    );
}

#[test]
fn temporal_mixed_constraints_on_random_background() {
    let rng = SimRng::seed_from_u64(88);
    let mut a = TraceGenerator::new(
        MachineModel::eureka().with_runtime(1_500.0, 1.0),
        MachineId(0),
    )
    .span(SimDuration::from_days(1))
    .target_utilization(0.3)
    .generate(&mut rng.fork(0));
    let mut b = TraceGenerator::new(
        MachineModel::eureka().with_runtime(1_500.0, 1.0),
        MachineId(1),
    )
    .span(SimDuration::from_days(1))
    .target_utilization(0.3)
    .generate(&mut rng.fork(1));

    // Three constrained trios layered onto the background.
    let mut constraints = Vec::new();
    for k in 0..3u64 {
        let base = 5_000 + k * 20_000;
        a.push(job(0, 200_000 + k, base, 10, 3_600));
        b.push(job(1, 200_000 + k, base + 60, 10, 1_800)); // co-start mate
        b.push(job(1, 300_000 + k, base + 120, 5, 900)); // delayed analysis
        constraints.push(ConstraintInstance {
            a: JobId(200_000 + k),
            b: JobId(200_000 + k),
            constraint: TemporalConstraint::CoStart,
        });
        constraints.push(ConstraintInstance {
            a: JobId(200_000 + k),
            b: JobId(300_000 + k),
            constraint: TemporalConstraint::StartAfter {
                min_delay: SimDuration::from_mins(10),
                max_delay: SimDuration::from_hours(12),
            },
        });
    }
    a.resort();
    b.resort();

    let report = TemporalSimulation::new(
        [
            MachineConfig::eureka(MachineId(0)),
            MachineConfig::eureka(MachineId(1)),
        ],
        [
            CoschedConfig::paper(Scheme::Hold),
            CoschedConfig::paper(Scheme::Yield),
        ],
        [a, b],
        constraints,
    )
    .run();
    assert!(!report.deadlocked);
    assert_eq!(report.outcomes.len(), 6);
    // CoStart constraints are exact; the generous StartAfter windows hold
    // on a 30 %-loaded machine.
    assert!(report.all_satisfied(), "outcomes {:?}", report.outcomes);
    // Verify the hard lower bound directly.
    for o in &report.outcomes {
        if let TemporalConstraint::StartAfter { min_delay, .. } = o.instance.constraint {
            assert!(!o.b_before_a);
            assert!(o.offset >= min_delay);
        }
    }
}

#[test]
fn reservation_baseline_synchronizes_but_fragments() {
    // Same workload through the protocol coscheduler and the co-reservation
    // desk: both must synchronize pairs; the reservation desk must lose
    // service units to walltime tails (the §III fragmentation argument).
    let rng = SimRng::seed_from_u64(99);
    let model = MachineModel::eureka().with_runtime(1_200.0, 1.0);
    let mut a = TraceGenerator::new(model.clone(), MachineId(0))
        .span(SimDuration::from_days(1))
        .target_utilization(0.4)
        .generate(&mut rng.fork(0));
    let mut b = TraceGenerator::new(model, MachineId(1))
        .span(SimDuration::from_days(1))
        .target_utilization(0.4)
        .generate(&mut rng.fork(1));
    pairing::pair_exact_proportion(
        &mut a,
        &mut b,
        0.15,
        SimDuration::from_mins(2),
        &mut rng.fork(2),
    );

    let resv = ReservationSimulation::new(["A", "B"], [100, 100], [a.clone(), b.clone()]).run();
    assert!(resv.all_pairs_synchronized());
    assert!(
        resv.summaries[0].lost_node_hours > 0.0,
        "walltime tails must register as loss"
    );

    use coupled_cosched::cosched::{CoupledConfig, CoupledSimulation, SchemeCombo};
    let mut cfg = CoupledConfig {
        machines: [
            MachineConfig::eureka(MachineId(0)),
            MachineConfig::eureka(MachineId(1)),
        ],
        cosched: [
            CoschedConfig::paper(SchemeCombo::YY.of(0)),
            CoschedConfig::paper(SchemeCombo::YY.of(1)),
        ],
        max_events: 1_000_000,
    };
    cfg.machines[0].name = "A".into();
    cfg.machines[1].name = "B".into();
    let proto = CoupledSimulation::new(cfg, [a, b]).run();
    assert!(proto.all_pairs_synchronized());
    // The protocol (yield-yield) wastes nothing; the reservation desk does.
    assert_eq!(proto.summaries[0].lost_node_hours, 0.0);
    assert!(
        resv.summaries[0].avg_wait_mins >= proto.summaries[0].avg_wait_mins,
        "reservations must not beat the protocol on regular-job waiting (resv {} vs proto {})",
        resv.summaries[0].avg_wait_mins,
        proto.summaries[0].avg_wait_mins
    );
}
